//! The streaming session: open series, per-layer deltas, cadenced refresh
//! and compaction.

use kgraph::pipeline::KGraphModel;
use kgraph::stream::{anomaly_scores_delta, extend_path, n_windows};
use kgraph::GraphLayer;
use std::sync::Arc;
use tscore::error::TsError;
use tsgraph::delta::{DeltaGraph, DeltaView};
use tsgraph::NodeId;

/// Knobs of a [`StreamSession`]. All cadences count *appended points*
/// (refresh) or *refreshes* (compaction), so behaviour is deterministic
/// and testable — no wall-clock timers.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Refresh (delta ingest + rescoring) after this many appended points.
    /// 0 refreshes on every append.
    pub refresh_every: usize,
    /// Compact the deltas into a fresh base CSR every this many refreshes.
    /// 0 disables compaction.
    pub compact_every: usize,
    /// Smoothing context passed to the anomaly scorer.
    pub context: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            refresh_every: 64,
            compact_every: 8,
            context: 3,
        }
    }
}

/// One live series the session is tracking.
pub(crate) struct OpenSeries {
    /// All points observed so far.
    pub(crate) values: Vec<f64>,
    /// Node path per model layer, grown window-by-window on append.
    pub(crate) paths: Vec<Vec<NodeId>>,
    /// Latest merged-view anomaly scores (best layer), set at refresh.
    pub(crate) scores: Option<Vec<f64>>,
}

/// What one append did, beyond buffering.
#[derive(Debug, Default)]
pub struct AppendOutcome {
    /// New complete windows this append created on the best layer.
    pub new_windows: usize,
    /// Whether the refresh cadence fired (deltas ingested, scores
    /// recomputed).
    pub refreshed: bool,
    /// A freshly compacted model, when the compaction cadence fired. The
    /// caller owns publication (e.g. `ModelStore::insert`) — the session
    /// has already switched its own base to it.
    pub compacted: Option<Arc<KGraphModel>>,
}

/// Summary of a session for the `stream-status` endpoint.
#[derive(Debug, Clone)]
pub struct StreamStatus {
    /// Points appended over the session's lifetime.
    pub points_total: u64,
    /// Points appended since the last refresh.
    pub points_pending: u64,
    /// Refreshes performed.
    pub refreshes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Transition triples buffered but not yet ingested into the deltas.
    pub pending_triples: u64,
    /// Distinct delta edges across all layers (un-compacted state).
    pub delta_edges: u64,
    /// Per-series state, in series-index order.
    pub series: Vec<SeriesStatus>,
}

/// Per-series slice of [`StreamStatus`].
#[derive(Debug, Clone)]
pub struct SeriesStatus {
    /// Session-local series index.
    pub index: usize,
    /// Points observed so far.
    pub points: usize,
    /// Complete windows on the best layer.
    pub windows: usize,
    /// Mean of the latest refreshed scores (None before first refresh or
    /// while the series is shorter than one window).
    pub mean_score: Option<f64>,
    /// Max of the latest refreshed scores.
    pub max_score: Option<f64>,
}

/// A continuously-updatable view over one fitted model: appends buffer
/// transition triples per layer, the refresh cadence folds them into
/// [`DeltaGraph`]s and rescores every open series against the merged
/// base+delta view, and the compaction cadence merges the deltas into a
/// fresh base CSR published as a new `Arc` snapshot.
///
/// The session itself is single-writer (wrap it in a `Mutex`; see
/// [`SessionRegistry`](crate::SessionRegistry)) — concurrent *readers* of
/// the model are untouched because the base is never mutated, only
/// replaced.
pub struct StreamSession {
    pub(crate) model: Arc<KGraphModel>,
    pub(crate) cfg: StreamConfig,
    /// One delta per model layer, node-aligned with that layer's graph.
    pub(crate) deltas: Vec<DeltaGraph<f64>>,
    /// Triples buffered per layer since the last refresh.
    pub(crate) pending: Vec<Vec<(NodeId, NodeId, f64)>>,
    pub(crate) series: Vec<OpenSeries>,
    pub(crate) points_since_refresh: usize,
    pub(crate) points_total: u64,
    pub(crate) refreshes: u64,
    pub(crate) compactions: u64,
}

fn sum(acc: &mut f64, w: f64) {
    *acc += w;
}

impl StreamSession {
    /// Opens a session over `model`.
    pub fn new(model: Arc<KGraphModel>, cfg: StreamConfig) -> Self {
        let deltas = model
            .layers
            .iter()
            .map(|l| DeltaGraph::new(l.graph.node_count()))
            .collect();
        let pending = model.layers.iter().map(|_| Vec::new()).collect();
        StreamSession {
            model,
            cfg,
            deltas,
            pending,
            series: Vec::new(),
            points_since_refresh: 0,
            points_total: 0,
            refreshes: 0,
            compactions: 0,
        }
    }

    /// The session's current base model (replaced at compaction).
    pub fn model(&self) -> &Arc<KGraphModel> {
        &self.model
    }

    /// Latest refreshed scores of series `index` (merged base+delta view).
    pub fn scores(&self, index: usize) -> Option<&[f64]> {
        self.series.get(index)?.scores.as_deref()
    }

    /// Number of open series.
    pub fn open_series(&self) -> usize {
        self.series.len()
    }

    /// Lifetime appended points.
    pub fn points_total(&self) -> u64 {
        self.points_total
    }

    /// Refreshes performed so far.
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// Compactions performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Appends `points` to series `index`. `index == open_series()` opens
    /// a new series; larger indices error. New complete windows are routed
    /// through every layer's stored embedding and their transitions
    /// buffered; the refresh/compaction cadences fire inside this call
    /// when due.
    pub fn append(&mut self, index: usize, points: &[f64]) -> Result<AppendOutcome, TsError> {
        if index > self.series.len() {
            return Err(TsError::InvalidParameter(format!(
                "series index {index} out of range (session has {}; the next new index is {})",
                self.series.len(),
                self.series.len()
            )));
        }
        if index == self.series.len() {
            let n_layers = self.model.layers.len();
            self.series.push(OpenSeries {
                values: Vec::new(),
                paths: vec![Vec::new(); n_layers],
                scores: None,
            });
        }
        let series = &mut self.series[index];
        series.values.extend_from_slice(points);

        let mut outcome = AppendOutcome::default();
        for (l, layer) in self.model.layers.iter().enumerate() {
            let old_windows = series.paths[l].len();
            let delta = extend_path(
                layer,
                &series.values,
                old_windows,
                series.paths[l].last().copied(),
            )?;
            if l == self.model.best_layer {
                outcome.new_windows = delta.new_nodes.len();
            }
            series.paths[l].extend_from_slice(&delta.new_nodes);
            self.pending[l].extend_from_slice(&delta.triples);
        }
        self.points_total += points.len() as u64;
        self.points_since_refresh += points.len();

        if self.points_since_refresh >= self.cfg.refresh_every.max(1) || self.cfg.refresh_every == 0
        {
            outcome.refreshed = true;
            outcome.compacted = self.refresh();
        }
        Ok(outcome)
    }

    /// Forces a refresh now: drains the pending triples into the deltas,
    /// rescores every open series against the merged view, and compacts
    /// when the cadence is due. Returns the new model on compaction.
    pub fn refresh(&mut self) -> Option<Arc<KGraphModel>> {
        for (l, pending) in self.pending.iter_mut().enumerate() {
            if !pending.is_empty() {
                self.deltas[l].ingest(pending.drain(..), sum);
            }
        }
        self.points_since_refresh = 0;
        self.rescore_all();
        self.refreshes += 1;
        if self.cfg.compact_every > 0
            && self.refreshes.is_multiple_of(self.cfg.compact_every as u64)
            && self.deltas.iter().any(|d| !d.is_empty())
        {
            return Some(self.compact());
        }
        None
    }

    /// Rescores every open series against the best layer's merged
    /// base+delta view, in parallel over a bounded worker pool (chunked
    /// disjoint slots — the same pattern as `KGraph::fit`).
    fn rescore_all(&mut self) {
        let n = self.series.len();
        if n == 0 {
            return;
        }
        let layer = &self.model.layers[self.model.best_layer];
        let delta = &self.deltas[self.model.best_layer];
        let context = self.cfg.context;
        let series = &mut self.series;
        let workers = std::thread::available_parallelism()
            .map_or(1, |p| p.get())
            .min(n);
        let chunk = n.div_ceil(workers);
        if workers < 2 {
            for s in series.iter_mut() {
                s.scores = anomaly_scores_delta(layer, delta, &s.values, context).ok();
            }
            return;
        }
        crossbeam::thread::scope(|scope| {
            for series_chunk in series.chunks_mut(chunk) {
                scope.spawn(move |_| {
                    for s in series_chunk.iter_mut() {
                        s.scores = anomaly_scores_delta(layer, delta, &s.values, context).ok();
                    }
                });
            }
        })
        .expect("rescore worker panicked");
    }

    /// Merges every layer's delta into a fresh base CSR, switches the
    /// session to the new model and returns it for publication. Readers of
    /// the old `Arc` are untouched.
    fn compact(&mut self) -> Arc<KGraphModel> {
        let old = &self.model;
        let layers: Vec<GraphLayer> = old
            .layers
            .iter()
            .zip(&self.deltas)
            .map(|(layer, delta)| {
                if delta.is_empty() {
                    return layer.clone();
                }
                let graph = DeltaView::new(&layer.graph, delta).compact(sum);
                GraphLayer {
                    length: layer.length,
                    graph,
                    paths: layer.paths.clone(),
                    labels: layer.labels.clone(),
                    embedding: layer.embedding.clone(),
                }
            })
            .collect();
        let next = Arc::new(KGraphModel {
            config: old.config.clone(),
            layers,
            consensus: old.consensus.clone(),
            labels: old.labels.clone(),
            scores: old.scores.clone(),
            best_layer: old.best_layer,
        });
        self.deltas = next
            .layers
            .iter()
            .map(|l| DeltaGraph::new(l.graph.node_count()))
            .collect();
        self.model = Arc::clone(&next);
        self.compactions += 1;
        next
    }

    /// Serialises the un-compacted per-layer delta state (`KGD1`).
    pub fn delta_state(&self) -> Vec<u8> {
        kgraph::serial::write_delta_state(&self.deltas)
    }

    /// Current session summary.
    pub fn status(&self) -> StreamStatus {
        let best = &self.model.layers[self.model.best_layer];
        StreamStatus {
            points_total: self.points_total,
            points_pending: self.points_since_refresh as u64,
            refreshes: self.refreshes,
            compactions: self.compactions,
            pending_triples: self.pending.iter().map(|p| p.len() as u64).sum(),
            delta_edges: self.deltas.iter().map(|d| d.edge_count() as u64).sum(),
            series: self
                .series
                .iter()
                .enumerate()
                .map(|(i, s)| SeriesStatus {
                    index: i,
                    points: s.values.len(),
                    windows: n_windows(s.values.len(), best.length, best.embedding.stride),
                    mean_score: s
                        .scores
                        .as_ref()
                        .filter(|v| !v.is_empty())
                        .map(|v| v.iter().sum::<f64>() / v.len() as f64),
                    max_score: s
                        .scores
                        .as_ref()
                        .and_then(|v| v.iter().copied().reduce(f64::max)),
                })
                .collect(),
        }
    }
}
