//! # streamfit — streaming ingestion and incremental model maintenance
//!
//! Turns the batch k-Graph pipeline into a continuously-updatable one.
//! A fitted [`KGraphModel`](kgraph::KGraphModel) is immutable — that is
//! what makes serving it lock-free — so "updating" a model means growing
//! state *next to* it and periodically replacing the whole `Arc`:
//!
//! 1. **Append** — [`StreamSession::append`] adds points to an open
//!    series, routes only the newly completed windows through each layer's
//!    stored embedding ([`kgraph::stream::extend_path`]) and buffers the
//!    induced transition triples.
//! 2. **Refresh** — on a configurable point cadence
//!    ([`StreamConfig::refresh_every`]) the buffered triples are folded
//!    into per-layer [`DeltaGraph`](tsgraph::DeltaGraph)s and every open
//!    series is rescored against the merged base+delta view
//!    ([`kgraph::stream::anomaly_scores_delta`]) over a bounded worker
//!    pool. No refit, no locks on the read path.
//! 3. **Compact** — every [`StreamConfig::compact_every`] refreshes the
//!    deltas merge into a fresh base CSR
//!    ([`tsgraph::DeltaView::compact`], bit-identical to a from-scratch
//!    build) and the session hands back a new `Arc<KGraphModel>` for the
//!    caller to publish (e.g. `graphserve`'s `ModelStore::insert`).
//!    Readers holding the old snapshot are untouched.
//!
//! The bounded-memory *initial* build lives one layer down, in
//! [`tsgraph::SpillBuilder`]; this crate owns the live-session state:
//! open series, cadences, per-layer deltas and the [`SessionRegistry`]
//! that `graphserve`'s ingest endpoints lock per model.

pub mod persist;
pub mod registry;
pub mod session;

pub use persist::{read_session_state, write_session_state, SeriesState, SessionState};
pub use registry::SessionRegistry;
pub use session::{AppendOutcome, SeriesStatus, StreamConfig, StreamSession, StreamStatus};

#[cfg(test)]
mod tests {
    use super::*;
    use kgraph::{KGraph, KGraphConfig};
    use std::sync::Arc;
    use tscore::{Dataset, DatasetKind, TimeSeries};

    fn fitted() -> Arc<kgraph::KGraphModel> {
        let series: Vec<TimeSeries> = (0..8)
            .map(|p| TimeSeries::new((0..120).map(|i| ((i + p) as f64 * 0.4).sin()).collect()))
            .collect();
        let ds = Dataset::new("live", DatasetKind::Simulated, series);
        let cfg = KGraphConfig {
            n_lengths: 1,
            psi: 12,
            pca_sample: 400,
            n_init: 2,
            ..KGraphConfig::new(2)
        }
        .with_lengths(vec![16]);
        Arc::new(KGraph::new(cfg).fit(&ds))
    }

    fn wave(from: usize, n: usize) -> Vec<f64> {
        (from..from + n).map(|i| (i as f64 * 0.4).sin()).collect()
    }

    #[test]
    fn append_refresh_and_score() {
        let model = fitted();
        let mut session = StreamSession::new(
            Arc::clone(&model),
            StreamConfig {
                refresh_every: 40,
                compact_every: 0,
                context: 3,
            },
        );
        // First chunk: below one window, nothing to score yet.
        let out = session.append(0, &wave(0, 10)).unwrap();
        assert_eq!(out.new_windows, 0);
        assert!(!out.refreshed);
        // Crossing the refresh cadence fires a refresh and yields scores.
        let out = session.append(0, &wave(10, 40)).unwrap();
        assert!(out.refreshed);
        assert!(out.compacted.is_none());
        let scores = session.scores(0).expect("scored after refresh");
        assert!(!scores.is_empty());
        let status = session.status();
        assert_eq!(status.points_total, 50);
        assert_eq!(status.refreshes, 1);
        assert_eq!(status.series.len(), 1);
        assert!(status.series[0].mean_score.is_some());
    }

    #[test]
    fn compaction_absorbs_the_delta_and_preserves_scores() {
        let model = fitted();
        let mut session = StreamSession::new(
            Arc::clone(&model),
            StreamConfig {
                refresh_every: 0, // refresh on every append
                compact_every: 0, // manual compaction via cadence below
                context: 3,
            },
        );
        session.append(0, &wave(0, 80)).unwrap();
        let status = session.status();
        assert!(status.delta_edges > 0, "transitions reached the delta");
        let before = session.scores(0).unwrap().to_vec();

        // Flip to a compacting config by building a new session over the
        // same stream — simpler: force compaction through a session whose
        // cadence is 1.
        let mut compacting = StreamSession::new(
            Arc::clone(&model),
            StreamConfig {
                refresh_every: 0,
                compact_every: 1,
                context: 3,
            },
        );
        let out = compacting.append(0, &wave(0, 80)).unwrap();
        let next = out.compacted.expect("cadence 1 compacts on first refresh");
        assert!(!Arc::ptr_eq(&next, &model), "a fresh Arc was published");
        assert!(Arc::ptr_eq(compacting.model(), &next));
        let status = compacting.status();
        assert_eq!(status.compactions, 1);
        assert_eq!(status.delta_edges, 0, "delta absorbed into the base");
        // The compacted base carries the streamed transitions: scoring
        // with an empty delta equals the pre-compaction merged view.
        let after = compacting.scores(0).unwrap();
        assert_eq!(before, after, "compaction must not change scores");
        // And the base graph grew (or at least gained weight): the old
        // model had none of the streamed bridge transitions.
        let old_edges: f64 = model.layers[model.best_layer]
            .graph
            .edges_iter()
            .map(|(_, _, _, &w)| w)
            .sum();
        let new_edges: f64 = next.layers[next.best_layer]
            .graph
            .edges_iter()
            .map(|(_, _, _, &w)| w)
            .sum();
        assert!(new_edges > old_edges, "{new_edges} vs {old_edges}");
    }

    #[test]
    fn registry_reuses_and_invalidates_sessions() {
        let model = fitted();
        let registry = SessionRegistry::new(StreamConfig::default());
        let a = registry.session_for("m", &model);
        let b = registry.session_for("m", &model);
        assert!(Arc::ptr_eq(&a, &b), "same model → same session");
        assert_eq!(registry.len(), 1);

        // A different model (re-fit) invalidates the session.
        let other = fitted();
        let c = registry.session_for("m", &other);
        assert!(!Arc::ptr_eq(&a, &c), "model changed → fresh session");

        // Compaction keeps the session: it switched itself to the new Arc.
        let compacted = {
            let mut guard = c.lock().unwrap();
            guard.append(0, &wave(0, 80)).unwrap();
            let next = guard.refresh();
            // compact_every=8 default: force until compaction fires.
            let mut next = next;
            for _ in 0..16 {
                if next.is_some() {
                    break;
                }
                guard.append(0, &wave(80, 16)).unwrap();
                next = guard.refresh();
            }
            next.expect("compaction fired")
        };
        let d = registry.session_for("m", &compacted);
        assert!(Arc::ptr_eq(&c, &d), "compacted model → session kept");

        assert!(registry.remove("m"));
        assert!(registry.get("m").is_none());
    }

    #[test]
    fn multiple_series_rescore_in_parallel() {
        let model = fitted();
        let mut session = StreamSession::new(
            model,
            StreamConfig {
                refresh_every: 1_000_000, // manual refresh only
                compact_every: 0,
                context: 3,
            },
        );
        for i in 0..6 {
            session.append(i, &wave(i, 60)).unwrap();
        }
        assert_eq!(session.open_series(), 6);
        session.refresh();
        for i in 0..6 {
            assert!(session.scores(i).is_some(), "series {i} scored");
        }
        let status = session.status();
        assert_eq!(status.series.len(), 6);
        assert!(status.series.iter().all(|s| s.windows > 0));
    }

    #[test]
    fn out_of_range_series_index_errors() {
        let model = fitted();
        let mut session = StreamSession::new(model, StreamConfig::default());
        assert!(session.append(1, &[1.0]).is_err(), "index 1 before 0");
        session.append(0, &[1.0]).unwrap();
        session.append(1, &[1.0]).unwrap();
        assert!(session.append(5, &[1.0]).is_err());
    }

    #[test]
    fn session_state_restores_bit_identically_mid_cadence() {
        let model = fitted();
        let cfg = StreamConfig {
            refresh_every: 30,
            compact_every: 2,
            context: 3,
        };
        let mut live = StreamSession::new(Arc::clone(&model), cfg.clone());
        // Drive through refreshes and a compaction, then stop mid-cadence
        // so every piece of state (deltas, pending triples, stale scores,
        // counters) is non-trivial at snapshot time.
        for chunk in 0..7 {
            live.append(0, &wave(chunk * 20, 20)).unwrap();
            live.append(1, &wave(chunk * 20 + 5, 20)).unwrap();
        }
        // One sub-cadence chunk so the snapshot lands mid-refresh.
        live.append(0, &wave(140, 20)).unwrap();
        let status = live.status();
        assert!(status.refreshes > 0 && status.points_pending > 0);

        let bytes = persist::write_session_state(&live, 42);
        let state = persist::read_session_state(&bytes).expect("round trip");
        assert_eq!(state.seq, 42);
        assert_eq!(state.points_total, status.points_total);
        assert_eq!(state.series.len(), 2);

        // Restore over the session's *current* model (post-compaction Arc).
        let restored =
            StreamSession::restore(Arc::clone(live.model()), cfg, state).expect("restore");
        assert_eq!(restored.scores(0), live.scores(0));
        assert_eq!(restored.scores(1), live.scores(1));
        let a = live.status();
        let b = restored.status();
        assert_eq!(a.points_total, b.points_total);
        assert_eq!(a.points_pending, b.points_pending);
        assert_eq!(a.refreshes, b.refreshes);
        assert_eq!(a.compactions, b.compactions);
        assert_eq!(a.pending_triples, b.pending_triples);
        assert_eq!(a.delta_edges, b.delta_edges);

        // The decisive check: both sessions evolve identically from here.
        let mut restored = restored;
        for chunk in 7..10 {
            let x = live.append(0, &wave(chunk * 20, 20)).unwrap();
            let y = restored.append(0, &wave(chunk * 20, 20)).unwrap();
            assert_eq!(x.refreshed, y.refreshed);
            assert_eq!(x.compacted.is_some(), y.compacted.is_some());
        }
        assert_eq!(live.scores(0), restored.scores(0));
        assert_eq!(live.scores(1), restored.scores(1));
        let a = live.status();
        let b = restored.status();
        assert_eq!(a.delta_edges, b.delta_edges);
        assert_eq!(
            a.series.iter().map(|s| s.max_score).collect::<Vec<_>>(),
            b.series.iter().map(|s| s.max_score).collect::<Vec<_>>()
        );
    }

    #[test]
    fn session_state_rejects_corruption_and_wrong_model() {
        let model = fitted();
        let mut session = StreamSession::new(Arc::clone(&model), StreamConfig::default());
        session.append(0, &wave(0, 40)).unwrap();
        let bytes = persist::write_session_state(&session, 7);

        // Every prefix truncation and a spread of bit flips must be clean
        // parse errors, never a panic.
        for cut in 0..bytes.len() {
            assert!(
                persist::read_session_state(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
        for pos in [0usize, 5, bytes.len() / 3, bytes.len() / 2, bytes.len() - 2] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(persist::read_session_state(&bad).is_err(), "flip at {pos}");
        }

        // A state decoded fine but restored over the wrong model is
        // rejected by the shape checks.
        let other = fitted();
        let state = persist::read_session_state(&bytes).unwrap();
        let compatible = other.layers.len() == model.layers.len()
            && other
                .layers
                .iter()
                .zip(&model.layers)
                .all(|(a, b)| a.graph.node_count() == b.graph.node_count());
        if !compatible {
            assert!(StreamSession::restore(other, StreamConfig::default(), state).is_err());
        }
    }

    #[test]
    fn delta_state_round_trips_through_serial() {
        let model = fitted();
        let mut session = StreamSession::new(
            model,
            StreamConfig {
                refresh_every: 0,
                compact_every: 0,
                context: 3,
            },
        );
        session.append(0, &wave(0, 80)).unwrap();
        let bytes = session.delta_state();
        let deltas = kgraph::serial::read_delta_state(&bytes).expect("round trip");
        assert_eq!(deltas.len(), session.model().layers.len());
        let total: u64 = deltas.iter().map(|d| d.edge_count() as u64).sum();
        assert_eq!(total, session.status().delta_edges);
    }
}
