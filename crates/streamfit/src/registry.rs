//! Named streaming sessions, one per served model.

use crate::session::{StreamConfig, StreamSession};
use kgraph::pipeline::KGraphModel;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Sessions keyed by model name. Writes (ingest, refresh) serialise on the
/// per-session mutex; model *readers* never touch this registry at all —
/// they keep reading whatever `Arc` snapshot they hold.
///
/// A session is bound to the model `Arc` it was opened over. When the
/// served model changes underneath it (a re-fit or reload replaced the
/// registry entry), the stale session is discarded and a fresh one opened
/// — buffered deltas refer to node ids of the old graph and must not leak
/// into the new one. Compaction does *not* trip this check: the session
/// itself switched to the compacted `Arc` before the caller published it.
pub struct SessionRegistry {
    cfg: StreamConfig,
    sessions: Mutex<HashMap<String, Arc<Mutex<StreamSession>>>>,
}

impl SessionRegistry {
    /// Registry opening sessions with `cfg`.
    pub fn new(cfg: StreamConfig) -> Self {
        SessionRegistry {
            cfg,
            sessions: Mutex::new(HashMap::new()),
        }
    }

    /// The session for `name` over `model`, opened (or re-opened, if the
    /// served model changed) on demand.
    pub fn session_for(&self, name: &str, model: &Arc<KGraphModel>) -> Arc<Mutex<StreamSession>> {
        let mut sessions = self.sessions.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = sessions.get(name) {
            let current = {
                let guard = existing.lock().unwrap_or_else(|e| e.into_inner());
                Arc::ptr_eq(guard.model(), model)
            };
            if current {
                return Arc::clone(existing);
            }
        }
        let fresh = Arc::new(Mutex::new(StreamSession::new(
            Arc::clone(model),
            self.cfg.clone(),
        )));
        sessions.insert(name.to_string(), Arc::clone(&fresh));
        fresh
    }

    /// Installs a pre-built (e.g. crash-recovered) session under `name`,
    /// replacing any existing one. As with [`session_for`], the session
    /// stays live only while its model `Arc` matches the served one — so
    /// recovery must publish the session's model to the store with the
    /// same `Arc` it restored the session over.
    ///
    /// [`session_for`]: SessionRegistry::session_for
    pub fn install(&self, name: &str, session: StreamSession) -> Arc<Mutex<StreamSession>> {
        let session = Arc::new(Mutex::new(session));
        self.sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), Arc::clone(&session));
        session
    }

    /// The config new sessions are opened with.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// The session for `name` if one is open, without creating or
    /// validating it.
    pub fn get(&self, name: &str) -> Option<Arc<Mutex<StreamSession>>> {
        self.sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Drops the session of `name` (e.g. when its model is deleted).
    pub fn remove(&self, name: &str) -> bool {
        self.sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name)
            .is_some()
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// Whether no sessions are open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
