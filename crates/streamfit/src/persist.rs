//! `KGS1` session-state persistence.
//!
//! A [`StreamSession`](crate::StreamSession) is more than its un-compacted
//! deltas: bit-identical recovery also needs the buffered (pre-refresh)
//! transition triples, every open series' raw values *and* its
//! last-refreshed scores, and the cadence counters. The `KGS1` blob
//! captures all of that — embedding the existing `KGD1` delta-state blob
//! verbatim — so a snapshot taken at *any* instant (mid-cadence included)
//! restores to exactly the state a never-stopped session would hold.
//!
//! Scores are persisted rather than recomputed at restore: when a snapshot
//! lands between refreshes, the live session still serves the scores of its
//! *last* refresh, and rescoring over the newer points would diverge from
//! that. Node paths, by contrast, are a pure function of the values and the
//! (immutable) layer embeddings, so they are rebuilt instead of stored.
//!
//! Layout (little-endian, shared primitives from [`kgraph::serial`]):
//!
//! ```text
//! b"KGS1"
//! u64 seq                  highest WAL sequence covered by this state
//! u64 points_total | u64 points_since_refresh | u64 refreshes | u64 compactions
//! u64 len | KGD1 bytes     embedded delta-state blob (own magic + checksum)
//! u64 n_layers             buffered pending triples, per layer:
//!   u64 n | n × (u64 src, u64 dst, f64 w)
//! u64 n_series             per open series:
//!   f64s values | u8 has_scores | [f64s scores]
//! u32 crc32                trailer over everything above
//! ```

use crate::session::{StreamConfig, StreamSession};
use kgraph::pipeline::KGraphModel;
use kgraph::serial::{put_f64, put_f64s, put_u64, verify_trailer, Cursor};
use kgraph::stream::extend_path;
use std::sync::Arc;
use tscore::error::TsError;
use tsgraph::checksum::crc32;
use tsgraph::delta::DeltaGraph;
use tsgraph::NodeId;

/// Magic prefix of a serialized session state.
pub const SESSION_MAGIC: &[u8; 4] = b"KGS1";

/// One open series as persisted: its raw values and the scores of its last
/// refresh (absent before the first refresh).
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesState {
    /// All points observed so far.
    pub values: Vec<f64>,
    /// Last-refreshed merged-view scores, if any.
    pub scores: Option<Vec<f64>>,
}

/// Decoded `KGS1` session state, ready for [`StreamSession::restore`].
#[derive(Debug, Clone)]
pub struct SessionState {
    /// Highest write-ahead-log sequence number this state covers. Records
    /// with larger sequence numbers must be replayed on top.
    pub seq: u64,
    /// Lifetime appended points.
    pub points_total: u64,
    /// Points appended since the last refresh.
    pub points_since_refresh: u64,
    /// Refreshes performed.
    pub refreshes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Per-layer un-compacted deltas (from the embedded `KGD1` blob).
    pub deltas: Vec<DeltaGraph<f64>>,
    /// Per-layer transition triples buffered since the last refresh.
    pub pending: Vec<Vec<(NodeId, NodeId, f64)>>,
    /// Open series in index order.
    pub series: Vec<SeriesState>,
}

/// Serialises `session` (and the WAL sequence `seq` it covers) as a
/// checksummed `KGS1` blob.
pub fn write_session_state(session: &StreamSession, seq: u64) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SESSION_MAGIC);
    put_u64(&mut out, seq);
    put_u64(&mut out, session.points_total);
    put_u64(&mut out, session.points_since_refresh as u64);
    put_u64(&mut out, session.refreshes);
    put_u64(&mut out, session.compactions);
    let delta = session.delta_state();
    put_u64(&mut out, delta.len() as u64);
    out.extend_from_slice(&delta);
    put_u64(&mut out, session.pending.len() as u64);
    for layer in &session.pending {
        put_u64(&mut out, layer.len() as u64);
        for &(s, t, w) in layer {
            put_u64(&mut out, u64::from(s.0));
            put_u64(&mut out, u64::from(t.0));
            put_f64(&mut out, w);
        }
    }
    put_u64(&mut out, session.series.len() as u64);
    for s in &session.series {
        put_f64s(&mut out, &s.values);
        match &s.scores {
            Some(scores) => {
                out.push(1);
                put_f64s(&mut out, scores);
            }
            None => out.push(0),
        }
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes a `KGS1` blob.
///
/// # Errors
///
/// [`TsError::Parse`] on wrong magic, checksum mismatch, truncation, a
/// corrupt embedded `KGD1` blob, or trailing bytes.
pub fn read_session_state(bytes: &[u8]) -> Result<SessionState, TsError> {
    let magic: &[u8] = bytes
        .get(..4)
        .ok_or_else(|| TsError::Parse(format!("session file truncated ({} bytes)", bytes.len())))?;
    if magic != SESSION_MAGIC {
        return Err(TsError::Parse(format!(
            "not a KGS1 session file (magic {magic:?})"
        )));
    }
    let payload = verify_trailer(bytes, "KGS1 session")?;
    let mut c = Cursor::new(payload);
    c.take(4)?; // magic, validated above
    let seq = c.u64()?;
    let points_total = c.u64()?;
    let points_since_refresh = c.u64()?;
    let refreshes = c.u64()?;
    let compactions = c.u64()?;
    let delta_len = c.len(1)?;
    let deltas = kgraph::serial::read_delta_state(c.take(delta_len)?)?;
    let n_layers = c.len(8)?;
    let mut pending = Vec::with_capacity(n_layers);
    for _ in 0..n_layers {
        let n = c.len(24)?;
        let mut triples = Vec::with_capacity(n);
        for _ in 0..n {
            let s = c.u64()?;
            let t = c.u64()?;
            let w = c.f64()?;
            let narrow = |v: u64| {
                u32::try_from(v).map_err(|_| {
                    TsError::Parse(format!("pending triple node id {v} overflows u32"))
                })
            };
            triples.push((NodeId(narrow(s)?), NodeId(narrow(t)?), w));
        }
        pending.push(triples);
    }
    let n_series = c.len(9)?;
    let mut series = Vec::with_capacity(n_series);
    for _ in 0..n_series {
        let values = c.f64s()?;
        let scores = match c.u8()? {
            0 => None,
            1 => Some(c.f64s()?),
            other => {
                return Err(TsError::Parse(format!(
                    "invalid scores flag {other} in session state"
                )))
            }
        };
        series.push(SeriesState { values, scores });
    }
    if c.remaining() != 0 {
        return Err(TsError::Parse(format!(
            "{} trailing bytes after session state",
            c.remaining()
        )));
    }
    Ok(SessionState {
        seq,
        points_total,
        points_since_refresh,
        refreshes,
        compactions,
        deltas,
        pending,
        series,
    })
}

impl StreamSession {
    /// Reconstructs a session over `model` from a decoded [`SessionState`].
    ///
    /// The deltas and pending triples are adopted as-is after validating
    /// their shape against `model`; per-layer node paths are rebuilt
    /// deterministically from the persisted values (a pure function of the
    /// immutable layer embeddings), and the persisted scores are installed
    /// *without* rescoring so the restored session serves exactly what the
    /// original served.
    ///
    /// # Errors
    ///
    /// [`TsError::Parse`] when the state does not fit `model` (layer count
    /// or per-layer node count mismatch, out-of-range pending triple);
    /// any [`TsError`] from path reconstruction.
    pub fn restore(
        model: Arc<KGraphModel>,
        cfg: StreamConfig,
        state: SessionState,
    ) -> Result<Self, TsError> {
        let n_layers = model.layers.len();
        if state.deltas.len() != n_layers || state.pending.len() != n_layers {
            return Err(TsError::Parse(format!(
                "session state has {} delta / {} pending layers, model has {n_layers}",
                state.deltas.len(),
                state.pending.len()
            )));
        }
        for (l, (delta, layer)) in state.deltas.iter().zip(&model.layers).enumerate() {
            let nodes = layer.graph.node_count();
            if delta.node_count() != nodes {
                return Err(TsError::Parse(format!(
                    "layer {l} delta covers {} nodes, model layer has {nodes}",
                    delta.node_count()
                )));
            }
            for &(s, t, _) in &state.pending[l] {
                if s.0 as usize >= nodes || t.0 as usize >= nodes {
                    return Err(TsError::Parse(format!(
                        "layer {l} pending triple ({}, {}) references missing node \
                         (layer has {nodes})",
                        s.0, t.0
                    )));
                }
            }
        }
        let mut series = Vec::with_capacity(state.series.len());
        for s in state.series {
            let mut paths = Vec::with_capacity(n_layers);
            for layer in &model.layers {
                // Rebuild the full path; the induced triples are already
                // accounted for in the deltas / pending buffers.
                let delta = extend_path(layer, &s.values, 0, None)?;
                paths.push(delta.new_nodes);
            }
            series.push(crate::session::OpenSeries {
                values: s.values,
                paths,
                scores: s.scores,
            });
        }
        let points_since_refresh =
            usize::try_from(state.points_since_refresh).unwrap_or(usize::MAX);
        Ok(StreamSession {
            model,
            cfg,
            deltas: state.deltas,
            pending: state.pending,
            series,
            points_since_refresh,
            points_total: state.points_total,
            refreshes: state.refreshes,
            compactions: state.compactions,
        })
    }
}
