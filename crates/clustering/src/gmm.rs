//! Gaussian Mixture Model with diagonal covariance, fitted by EM.
//!
//! Used as the GMM baseline of the Benchmark frame. Raw series are
//! high-dimensional relative to dataset sizes, so the harness feeds it
//! PCA-reduced rows; the implementation itself is dimension-agnostic.

use crate::kmeans::KMeans;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// GMM configuration.
#[derive(Debug, Clone, Copy)]
pub struct Gmm {
    /// Number of mixture components.
    pub k: usize,
    /// Maximum EM iterations.
    pub max_iter: usize,
    /// Log-likelihood convergence tolerance.
    pub tol: f64,
    /// Variance floor (avoids collapsing components).
    pub reg_covar: f64,
    /// Seed (k-Means initialisation).
    pub seed: u64,
}

impl Gmm {
    /// Creates a configuration with standard defaults.
    pub fn new(k: usize, seed: u64) -> Self {
        Gmm {
            k,
            max_iter: 100,
            tol: 1e-6,
            reg_covar: 1e-6,
            seed,
        }
    }

    /// Fits the mixture and returns hard assignments (argmax responsibility).
    pub fn fit(&self, rows: &[Vec<f64>]) -> GmmResult {
        assert!(self.k > 0, "k must be > 0");
        assert!(!rows.is_empty(), "GMM requires at least one point");
        let n = rows.len();
        let d = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == d), "ragged input rows");
        let k = self.k.min(n);
        let _rng = StdRng::seed_from_u64(self.seed);

        // Initialise from k-Means.
        let km = KMeans::new(k, self.seed).fit(rows);
        let mut means = km.centroids.clone();
        means.truncate(k);
        let mut weights = vec![1.0 / k as f64; k];
        let mut variances = vec![vec![1.0; d]; k];
        // Per-cluster variance initialisation from the k-Means partition.
        for c in 0..k {
            let members: Vec<&Vec<f64>> = rows
                .iter()
                .zip(&km.labels)
                .filter(|(_, &l)| l == c)
                .map(|(r, _)| r)
                .collect();
            if members.is_empty() {
                continue;
            }
            for j in 0..d {
                let var = members
                    .iter()
                    .map(|r| (r[j] - means[c][j]) * (r[j] - means[c][j]))
                    .sum::<f64>()
                    / members.len() as f64;
                variances[c][j] = var.max(self.reg_covar);
            }
            weights[c] = members.len() as f64 / n as f64;
        }

        let mut resp = vec![vec![0.0f64; k]; n];
        let mut prev_ll = f64::NEG_INFINITY;
        let mut log_likelihood = prev_ll;
        for _ in 0..self.max_iter {
            // E-step: responsibilities via log-sum-exp.
            log_likelihood = 0.0;
            for (i, row) in rows.iter().enumerate() {
                let mut logp = vec![0.0f64; k];
                for c in 0..k {
                    logp[c] = weights[c].max(1e-300).ln()
                        + log_gaussian_diag(row, &means[c], &variances[c]);
                }
                let max = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let sum_exp: f64 = logp.iter().map(|&lp| (lp - max).exp()).sum();
                let log_norm = max + sum_exp.ln();
                log_likelihood += log_norm;
                for c in 0..k {
                    resp[i][c] = (logp[c] - log_norm).exp();
                }
            }
            // M-step.
            for c in 0..k {
                let nk: f64 = resp.iter().map(|r| r[c]).sum::<f64>().max(1e-12);
                weights[c] = nk / n as f64;
                for j in 0..d {
                    let mu = rows
                        .iter()
                        .zip(&resp)
                        .map(|(row, r)| r[c] * row[j])
                        .sum::<f64>()
                        / nk;
                    means[c][j] = mu;
                }
                for j in 0..d {
                    let var = rows
                        .iter()
                        .zip(&resp)
                        .map(|(row, r)| r[c] * (row[j] - means[c][j]) * (row[j] - means[c][j]))
                        .sum::<f64>()
                        / nk;
                    variances[c][j] = var.max(self.reg_covar);
                }
            }
            if (log_likelihood - prev_ll).abs() < self.tol * (1.0 + log_likelihood.abs()) {
                break;
            }
            prev_ll = log_likelihood;
        }

        let labels = resp
            .iter()
            .map(|r| {
                r.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN responsibility"))
                    .map(|(c, _)| c)
                    .unwrap_or(0)
            })
            .collect();
        GmmResult {
            labels,
            means,
            variances,
            weights,
            log_likelihood,
        }
    }
}

/// Output of a GMM fit.
#[derive(Debug, Clone)]
pub struct GmmResult {
    /// Hard assignment per point.
    pub labels: Vec<usize>,
    /// Component means.
    pub means: Vec<Vec<f64>>,
    /// Component diagonal variances.
    pub variances: Vec<Vec<f64>>,
    /// Component mixing weights.
    pub weights: Vec<f64>,
    /// Final training log-likelihood.
    pub log_likelihood: f64,
}

/// Log density of a diagonal-covariance Gaussian.
fn log_gaussian_diag(x: &[f64], mean: &[f64], var: &[f64]) -> f64 {
    let mut acc = 0.0;
    for ((xi, mi), vi) in x.iter().zip(mean).zip(var) {
        let v = vi.max(1e-300);
        acc += -0.5 * ((xi - mi) * (xi - mi) / v + v.ln() + (2.0 * std::f64::consts::PI).ln());
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::adjusted_rand_index;

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for i in 0..25 {
            let j = (i % 5) as f64 * 0.2;
            rows.push(vec![j, j * 0.5]);
            truth.push(0);
            rows.push(vec![8.0 + j, 8.0 - j]);
            truth.push(1);
        }
        (rows, truth)
    }

    #[test]
    fn separates_blobs() {
        let (rows, truth) = blobs();
        let result = Gmm::new(2, 0).fit(&rows);
        assert!((adjusted_rand_index(&truth, &result.labels) - 1.0).abs() < 1e-12);
        assert!((result.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn log_likelihood_improves_over_iterations() {
        let (rows, _) = blobs();
        let one_iter = Gmm {
            max_iter: 1,
            ..Gmm::new(2, 0)
        }
        .fit(&rows);
        let many_iter = Gmm {
            max_iter: 50,
            ..Gmm::new(2, 0)
        }
        .fit(&rows);
        assert!(many_iter.log_likelihood >= one_iter.log_likelihood - 1e-9);
    }

    #[test]
    fn variance_floor_respected() {
        // Identical points would collapse variance to 0 without the floor.
        let rows = vec![vec![1.0, 2.0]; 10];
        let result = Gmm::new(2, 0).fit(&rows);
        for v in &result.variances {
            for &x in v {
                assert!(x >= 1e-6);
                assert!(x.is_finite());
            }
        }
        assert!(result.log_likelihood.is_finite());
    }

    #[test]
    fn deterministic() {
        let (rows, _) = blobs();
        let a = Gmm::new(2, 11).fit(&rows);
        let b = Gmm::new(2, 11).fit(&rows);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn k_one() {
        let (rows, _) = blobs();
        let result = Gmm::new(1, 0).fit(&rows);
        assert!(result.labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn anisotropic_weights() {
        // 40 points in one blob, 5 in the other: weights should reflect it.
        let mut rows = Vec::new();
        for i in 0..40 {
            rows.push(vec![(i % 5) as f64 * 0.1, 0.0]);
        }
        for i in 0..5 {
            rows.push(vec![50.0 + i as f64 * 0.1, 0.0]);
        }
        let result = Gmm::new(2, 0).fit(&rows);
        let mut w = result.weights.clone();
        w.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(w[0] < 0.2 && w[1] > 0.8, "weights {w:?}");
    }

    #[test]
    #[should_panic(expected = "k must be > 0")]
    fn zero_k_panics() {
        Gmm::new(0, 0).fit(&[vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_panics() {
        Gmm::new(2, 0).fit(&[]);
    }
}
