//! Auto-encoder based clustering baselines.
//!
//! The paper's deep-learning comparators — Deep Auto-Encoder (DAE) and Deep
//! Temporal Clustering (DTC) — are reproduced with small from-scratch MLPs:
//!
//! * [`DenseAe`]: a 1-hidden-layer tanh auto-encoder trained with
//!   mini-batch SGD + momentum on z-scored series; clustering = k-Means on
//!   the latent codes. This is the "DAE → clustering" code path.
//! * [`DtcLike`]: DenseAE initialisation followed by DEC-style refinement —
//!   Student-t soft assignments against learnable centroids, sharpened
//!   target distribution, gradient descent on the centroids (encoder frozen,
//!   a standard simplification). This is the "DTC" code path.
//!
//! No external autodiff: gradients are hand-derived (the architectures are
//! two matrix products and a tanh).

use crate::kmeans::KMeans;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tscore::transform::znorm;

/// A 1-hidden-layer auto-encoder: `x → tanh(W₁x+b₁) = h → W₂h+b₂ = x̂`.
#[derive(Debug, Clone)]
pub struct DenseAe {
    /// Latent dimension.
    pub latent: usize,
    /// Training epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Mini-batch size.
    pub batch: usize,
    /// RNG seed (weight init + shuffling).
    pub seed: u64,
}

impl DenseAe {
    /// Creates a configuration with pragmatic defaults (latent 8, 150
    /// epochs, lr 0.01).
    pub fn new(latent: usize, seed: u64) -> Self {
        DenseAe {
            latent,
            epochs: 150,
            lr: 0.01,
            momentum: 0.9,
            batch: 16,
            seed,
        }
    }

    /// Trains the auto-encoder on z-scored rows; returns the trained model.
    pub fn train(&self, rows: &[Vec<f64>]) -> TrainedAe {
        assert!(!rows.is_empty(), "auto-encoder requires input");
        let d = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == d), "ragged input rows");
        let data: Vec<Vec<f64>> = rows.iter().map(|r| znorm(r)).collect();
        let h = self.latent.max(1);
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Xavier-ish init.
        let scale1 = (2.0 / (d + h) as f64).sqrt();
        let scale2 = (2.0 / (h + d) as f64).sqrt();
        let mut w1: Vec<Vec<f64>> = (0..h)
            .map(|_| (0..d).map(|_| rng.gen_range(-scale1..scale1)).collect())
            .collect();
        let mut b1 = vec![0.0f64; h];
        let mut w2: Vec<Vec<f64>> = (0..d)
            .map(|_| (0..h).map(|_| rng.gen_range(-scale2..scale2)).collect())
            .collect();
        let mut b2 = vec![0.0f64; d];

        // Momentum buffers.
        let mut vw1 = vec![vec![0.0; d]; h];
        let mut vb1 = vec![0.0; h];
        let mut vw2 = vec![vec![0.0; h]; d];
        let mut vb2 = vec![0.0; d];

        let n = data.len();
        let mut order: Vec<usize> = (0..n).collect();
        for _epoch in 0..self.epochs {
            // Shuffle.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                order.swap(i, j);
            }
            for chunk in order.chunks(self.batch.max(1)) {
                // Accumulate gradients over the batch.
                let mut gw1 = vec![vec![0.0; d]; h];
                let mut gb1 = vec![0.0; h];
                let mut gw2 = vec![vec![0.0; h]; d];
                let mut gb2 = vec![0.0; d];
                for &idx in chunk {
                    let x = &data[idx];
                    // Forward.
                    let mut pre = b1.clone();
                    for (j, p) in pre.iter_mut().enumerate() {
                        *p += w1[j].iter().zip(x).map(|(w, v)| w * v).sum::<f64>();
                    }
                    let hid: Vec<f64> = pre.iter().map(|p| p.tanh()).collect();
                    let mut xhat = b2.clone();
                    for (o, xh) in xhat.iter_mut().enumerate() {
                        *xh += w2[o].iter().zip(&hid).map(|(w, v)| w * v).sum::<f64>();
                    }
                    // Backward (MSE loss, factor 2/d folded into lr).
                    let err: Vec<f64> = xhat
                        .iter()
                        .zip(x)
                        .map(|(a, b)| (a - b) / d as f64)
                        .collect();
                    for o in 0..d {
                        gb2[o] += err[o];
                        for j in 0..h {
                            gw2[o][j] += err[o] * hid[j];
                        }
                    }
                    for j in 0..h {
                        let upstream: f64 = (0..d).map(|o| err[o] * w2[o][j]).sum::<f64>();
                        let dh = upstream * (1.0 - hid[j] * hid[j]);
                        gb1[j] += dh;
                        for (i, &xv) in x.iter().enumerate() {
                            gw1[j][i] += dh * xv;
                        }
                    }
                }
                // SGD + momentum update.
                let bs = chunk.len() as f64;
                for j in 0..h {
                    vb1[j] = self.momentum * vb1[j] - self.lr * gb1[j] / bs;
                    b1[j] += vb1[j];
                    for i in 0..d {
                        vw1[j][i] = self.momentum * vw1[j][i] - self.lr * gw1[j][i] / bs;
                        w1[j][i] += vw1[j][i];
                    }
                }
                for o in 0..d {
                    vb2[o] = self.momentum * vb2[o] - self.lr * gb2[o] / bs;
                    b2[o] += vb2[o];
                    for j in 0..h {
                        vw2[o][j] = self.momentum * vw2[o][j] - self.lr * gw2[o][j] / bs;
                        w2[o][j] += vw2[o][j];
                    }
                }
            }
        }
        TrainedAe { w1, b1, w2, b2 }
    }

    /// Trains, encodes and clusters the latent codes with k-Means.
    pub fn fit_cluster(&self, rows: &[Vec<f64>], k: usize) -> Vec<usize> {
        let model = self.train(rows);
        let latent: Vec<Vec<f64>> = rows.iter().map(|r| model.encode(&znorm(r))).collect();
        KMeans::new(k, self.seed).fit(&latent).labels
    }
}

/// Trained auto-encoder weights.
#[derive(Debug, Clone)]
pub struct TrainedAe {
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    w2: Vec<Vec<f64>>,
    b2: Vec<f64>,
}

impl TrainedAe {
    /// Encodes an input to the latent space.
    pub fn encode(&self, x: &[f64]) -> Vec<f64> {
        self.w1
            .iter()
            .zip(&self.b1)
            .map(|(row, b)| (row.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + b).tanh())
            .collect()
    }

    /// Decodes a latent vector back to input space.
    pub fn decode(&self, h: &[f64]) -> Vec<f64> {
        self.w2
            .iter()
            .zip(&self.b2)
            .map(|(row, b)| row.iter().zip(h).map(|(w, v)| w * v).sum::<f64>() + b)
            .collect()
    }

    /// Mean squared reconstruction error over rows (z-scored internally).
    pub fn reconstruction_error(&self, rows: &[Vec<f64>]) -> f64 {
        let mut total = 0.0;
        for r in rows {
            let z = znorm(r);
            let xhat = self.decode(&self.encode(&z));
            total += xhat
                .iter()
                .zip(&z)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                / z.len() as f64;
        }
        total / rows.len() as f64
    }
}

/// DTC-like: auto-encoder + DEC-style centroid refinement in latent space.
#[derive(Debug, Clone)]
pub struct DtcLike {
    /// Auto-encoder configuration (provides the latent space).
    pub ae: DenseAe,
    /// Number of clusters.
    pub k: usize,
    /// DEC refinement iterations.
    pub refine_iter: usize,
    /// Centroid learning rate.
    pub centroid_lr: f64,
}

impl DtcLike {
    /// Creates a configuration with 50 refinement iterations.
    pub fn new(k: usize, latent: usize, seed: u64) -> Self {
        DtcLike {
            ae: DenseAe::new(latent, seed),
            k,
            refine_iter: 50,
            centroid_lr: 0.5,
        }
    }

    /// Trains AE, initialises centroids with k-Means on the latent codes,
    /// then refines centroids by descending the DEC KL objective.
    pub fn fit(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        let model = self.ae.train(rows);
        let latent: Vec<Vec<f64>> = rows.iter().map(|r| model.encode(&znorm(r))).collect();
        let km = KMeans::new(self.k, self.ae.seed).fit(&latent);
        let mut centroids = km.centroids.clone();
        centroids.truncate(self.k.min(latent.len()));
        let n = latent.len();
        let k = centroids.len();
        let h = latent[0].len();

        for _ in 0..self.refine_iter {
            // Soft assignment q_ij ∝ (1 + ‖z_i − µ_j‖²)^{-1} (Student-t, ν=1).
            let mut q = vec![vec![0.0f64; k]; n];
            for i in 0..n {
                let mut norm = 0.0;
                for (j, c) in centroids.iter().enumerate() {
                    let d2: f64 = latent[i]
                        .iter()
                        .zip(c)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    q[i][j] = 1.0 / (1.0 + d2);
                    norm += q[i][j];
                }
                for v in q[i].iter_mut() {
                    *v /= norm.max(1e-12);
                }
            }
            // Target distribution p_ij ∝ q²_ij / f_j.
            let f: Vec<f64> = (0..k).map(|j| q.iter().map(|r| r[j]).sum()).collect();
            let mut p = vec![vec![0.0f64; k]; n];
            for i in 0..n {
                let mut norm = 0.0;
                for j in 0..k {
                    p[i][j] = q[i][j] * q[i][j] / f[j].max(1e-12);
                    norm += p[i][j];
                }
                for v in p[i].iter_mut() {
                    *v /= norm.max(1e-12);
                }
            }
            // Gradient wrt centroids:
            // ∂KL/∂µ_j = 2 Σ_i (1+‖z_i−µ_j‖²)^{-1} (q_ij − p_ij)(z_i − µ_j)
            for j in 0..k {
                let mut grad = vec![0.0f64; h];
                for i in 0..n {
                    let d2: f64 = latent[i]
                        .iter()
                        .zip(&centroids[j])
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum();
                    let coef = 2.0 * (q[i][j] - p[i][j]) / (1.0 + d2);
                    for (g, (zi, cj)) in grad.iter_mut().zip(latent[i].iter().zip(&centroids[j])) {
                        *g += coef * (zi - cj);
                    }
                }
                for (c, g) in centroids[j].iter_mut().zip(&grad) {
                    // Descend: the gradient above is ∂KL/∂µ already with the
                    // right sign for subtraction.
                    *c -= self.centroid_lr * g / n as f64;
                }
            }
        }
        // Hard assignment by final soft max.
        latent
            .iter()
            .map(|z| {
                centroids
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        let da: f64 = z.iter().zip(*a).map(|(x, y)| (x - y) * (x - y)).sum();
                        let db: f64 = z.iter().zip(*b).map(|(x, y)| (x - y) * (x - y)).sum();
                        da.partial_cmp(&db).expect("NaN distance")
                    })
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::adjusted_rand_index;

    fn two_waveforms() -> (Vec<Vec<f64>>, Vec<usize>) {
        let m = 32;
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for v in 0..10 {
            let phase = v as f64 * 0.1;
            rows.push((0..m).map(|i| (i as f64 * 0.2 + phase).sin()).collect());
            truth.push(0);
            rows.push(
                (0..m)
                    .map(|i| {
                        if (i / 8) % 2 == 0 {
                            1.0
                        } else {
                            -1.0 + phase * 0.01
                        }
                    })
                    .collect(),
            );
            truth.push(1);
        }
        (rows, truth)
    }

    #[test]
    fn autoencoder_learns_to_reconstruct() {
        let (rows, _) = two_waveforms();
        let short = DenseAe {
            epochs: 1,
            ..DenseAe::new(6, 0)
        }
        .train(&rows);
        let long = DenseAe {
            epochs: 200,
            ..DenseAe::new(6, 0)
        }
        .train(&rows);
        let e_short = short.reconstruction_error(&rows);
        let e_long = long.reconstruction_error(&rows);
        assert!(
            e_long < e_short,
            "training should reduce error: {e_long} vs {e_short}"
        );
        assert!(e_long < 0.5, "final error too high: {e_long}");
    }

    #[test]
    fn encode_decode_shapes() {
        let (rows, _) = two_waveforms();
        let model = DenseAe::new(4, 1).train(&rows);
        let z = model.encode(&rows[0]);
        assert_eq!(z.len(), 4);
        assert!(z.iter().all(|v| v.is_finite() && v.abs() <= 1.0));
        let xhat = model.decode(&z);
        assert_eq!(xhat.len(), rows[0].len());
    }

    #[test]
    fn dense_ae_clusters_waveforms() {
        let (rows, truth) = two_waveforms();
        let labels = DenseAe::new(6, 3).fit_cluster(&rows, 2);
        let ari = adjusted_rand_index(&truth, &labels);
        assert!(ari > 0.6, "ARI {ari}");
    }

    #[test]
    fn dtc_like_clusters_waveforms() {
        let (rows, truth) = two_waveforms();
        let labels = DtcLike::new(2, 6, 3).fit(&rows);
        let ari = adjusted_rand_index(&truth, &labels);
        assert!(ari > 0.6, "ARI {ari}");
    }

    #[test]
    fn training_deterministic() {
        let (rows, _) = two_waveforms();
        let cfg = DenseAe {
            epochs: 20,
            ..DenseAe::new(4, 9)
        };
        let a = cfg.fit_cluster(&rows, 2);
        let b = cfg.fit_cluster(&rows, 2);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "requires input")]
    fn empty_input_panics() {
        DenseAe::new(4, 0).train(&[]);
    }

    #[test]
    fn dtc_refinement_does_not_destroy_partition() {
        let (rows, truth) = two_waveforms();
        let base = DenseAe::new(6, 3).fit_cluster(&rows, 2);
        let refined = DtcLike::new(2, 6, 3).fit(&rows);
        let ari_base = adjusted_rand_index(&truth, &base);
        let ari_ref = adjusted_rand_index(&truth, &refined);
        // Refinement should stay within a reasonable band of the init.
        assert!(
            ari_ref >= ari_base - 0.3,
            "base {ari_base} refined {ari_ref}"
        );
    }
}
