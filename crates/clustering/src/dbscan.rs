//! DBSCAN density-based clustering.
//!
//! Classic flood-fill formulation with Euclidean distance. Noise points get
//! the special label [`NOISE`]; [`assign_noise_to_nearest`] can post-process
//! them to the nearest cluster so external metrics (which expect a full
//! partition) remain applicable — that is what the benchmark harness does.

/// Label used for noise points.
pub const NOISE: usize = usize::MAX;

/// DBSCAN configuration.
#[derive(Debug, Clone, Copy)]
pub struct Dbscan {
    /// Neighbourhood radius.
    pub eps: f64,
    /// Minimum neighbourhood size (incl. the point) to be a core point.
    pub min_pts: usize,
}

impl Dbscan {
    /// Creates a configuration.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        Dbscan { eps, min_pts }
    }

    /// Runs DBSCAN; labels are `0..k` for clusters, [`NOISE`] for noise.
    pub fn fit(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        assert!(self.eps > 0.0, "eps must be positive");
        assert!(self.min_pts > 0, "min_pts must be positive");
        let n = rows.len();
        let mut labels = vec![NOISE; n];
        let mut visited = vec![false; n];
        let eps2 = self.eps * self.eps;
        let neighbours = |i: usize| -> Vec<usize> {
            (0..n)
                .filter(|&j| {
                    rows[i]
                        .iter()
                        .zip(&rows[j])
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f64>()
                        <= eps2
                })
                .collect()
        };

        let mut cluster = 0usize;
        for i in 0..n {
            if visited[i] {
                continue;
            }
            visited[i] = true;
            let nbrs = neighbours(i);
            if nbrs.len() < self.min_pts {
                continue; // stays noise unless claimed by a later core point
            }
            labels[i] = cluster;
            let mut frontier: Vec<usize> = nbrs;
            let mut f = 0;
            while f < frontier.len() {
                let q = frontier[f];
                f += 1;
                if labels[q] == NOISE {
                    labels[q] = cluster; // border point
                }
                if visited[q] {
                    continue;
                }
                visited[q] = true;
                let q_nbrs = neighbours(q);
                if q_nbrs.len() >= self.min_pts {
                    frontier.extend(q_nbrs);
                }
            }
            cluster += 1;
        }
        labels
    }
}

/// Re-assigns noise points to the cluster of their nearest non-noise
/// neighbour; if everything is noise, collapses to a single cluster.
pub fn assign_noise_to_nearest(rows: &[Vec<f64>], labels: &[usize]) -> Vec<usize> {
    let mut out = labels.to_vec();
    if !out.iter().any(|&l| l != NOISE) {
        return vec![0; rows.len()];
    }
    for i in 0..rows.len() {
        if out[i] != NOISE {
            continue;
        }
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (j, &l) in labels.iter().enumerate() {
            if l == NOISE {
                continue;
            }
            let d: f64 = rows[i]
                .iter()
                .zip(&rows[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            if d < best_d {
                best_d = d;
                best = l;
            }
        }
        out[i] = best;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs_with_outlier() -> Vec<Vec<f64>> {
        let mut rows = Vec::new();
        for i in 0..8 {
            rows.push(vec![(i % 3) as f64 * 0.2, (i % 2) as f64 * 0.2]);
        }
        for i in 0..8 {
            rows.push(vec![10.0 + (i % 3) as f64 * 0.2, (i % 2) as f64 * 0.2]);
        }
        rows.push(vec![100.0, 100.0]); // lone outlier
        rows
    }

    #[test]
    fn finds_two_clusters_and_noise() {
        let rows = blobs_with_outlier();
        let labels = Dbscan::new(1.0, 3).fit(&rows);
        assert_eq!(labels[16], NOISE);
        let c0 = labels[0];
        let c1 = labels[8];
        assert_ne!(c0, c1);
        assert!(labels[..8].iter().all(|&l| l == c0));
        assert!(labels[8..16].iter().all(|&l| l == c1));
    }

    #[test]
    fn large_eps_merges_everything() {
        let rows = blobs_with_outlier();
        let labels = Dbscan::new(1000.0, 2).fit(&rows);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn strict_min_pts_marks_all_noise() {
        let rows = vec![vec![0.0], vec![5.0], vec![10.0]];
        let labels = Dbscan::new(0.1, 2).fit(&rows);
        assert!(labels.iter().all(|&l| l == NOISE));
    }

    #[test]
    fn noise_reassignment() {
        let rows = blobs_with_outlier();
        let labels = Dbscan::new(1.0, 3).fit(&rows);
        let fixed = assign_noise_to_nearest(&rows, &labels);
        assert!(fixed.iter().all(|&l| l != NOISE));
        // The outlier is nearer to the second blob.
        assert_eq!(fixed[16], labels[8]);
    }

    #[test]
    fn all_noise_reassignment_collapses() {
        let rows = vec![vec![0.0], vec![5.0], vec![10.0]];
        let labels = Dbscan::new(0.1, 2).fit(&rows);
        let fixed = assign_noise_to_nearest(&rows, &labels);
        assert_eq!(fixed, vec![0, 0, 0]);
    }

    #[test]
    fn empty_input() {
        let labels = Dbscan::new(1.0, 2).fit(&[]);
        assert!(labels.is_empty());
    }

    #[test]
    fn border_points_join_cluster() {
        // A dense core with one border point within eps of a core point but
        // itself not core.
        let rows = vec![
            vec![0.0],
            vec![0.1],
            vec![0.2],
            vec![0.9], // border: within 1.0 of 0.2/0.1/0.0 core region
        ];
        let labels = Dbscan::new(1.0, 3).fit(&rows);
        assert!(labels.iter().all(|&l| l == 0), "labels {labels:?}");
    }

    #[test]
    #[should_panic(expected = "eps must be positive")]
    fn bad_eps_panics() {
        Dbscan::new(0.0, 3).fit(&[vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "min_pts must be positive")]
    fn bad_min_pts_panics() {
        Dbscan::new(1.0, 0).fit(&[vec![1.0]]);
    }
}
