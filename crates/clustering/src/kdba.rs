//! k-DBA: k-Means under Dynamic Time Warping with DBA averaging.
//!
//! Assignment uses banded DTW; centroid refinement uses DTW Barycenter
//! Averaging (Petitjean et al.). This is the "k-DBA" baseline of the
//! Benchmark frame. DTW is O(m·w) per pair, so the band keeps large
//! datasets tractable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tscore::dtw::{dba_with, dtw_with, DtwOptions, DtwScratch};

/// k-DBA configuration.
#[derive(Debug, Clone, Copy)]
pub struct Kdba {
    /// Number of clusters.
    pub k: usize,
    /// Maximum alternation iterations.
    pub max_iter: usize,
    /// DBA refinement iterations per centroid update.
    pub dba_iter: usize,
    /// Sakoe–Chiba half-band for all DTW computations (`None` = full).
    pub window: Option<usize>,
    /// RNG seed for initial centroid choice.
    pub seed: u64,
}

/// Output of a k-DBA fit.
#[derive(Debug, Clone)]
pub struct KdbaResult {
    /// Cluster label per series.
    pub labels: Vec<usize>,
    /// DBA centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of DTW distances to assigned centroids.
    pub total_distance: f64,
}

impl Kdba {
    /// Creates a configuration with `max_iter = 10`, `dba_iter = 5` and a
    /// 10 %-of-length band (resolved at fit time).
    pub fn new(k: usize, seed: u64) -> Self {
        Kdba {
            k,
            max_iter: 10,
            dba_iter: 5,
            window: None,
            seed,
        }
    }

    /// Fits k-DBA on equal-length rows.
    pub fn fit(&self, rows: &[Vec<f64>]) -> KdbaResult {
        assert!(self.k > 0, "k must be > 0");
        assert!(!rows.is_empty(), "k-DBA requires at least one series");
        let m = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == m), "ragged input rows");
        let n = rows.len();
        let k = self.k.min(n);
        let opts = DtwOptions {
            window: Some(self.window.unwrap_or((m / 10).max(2))),
        };

        // Initialise centroids as k distinct random members.
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut picks: Vec<usize> = (0..n).collect();
        for i in (1..picks.len()).rev() {
            let j = rng.gen_range(0..=i);
            picks.swap(i, j);
        }
        let mut centroids: Vec<Vec<f64>> = picks.iter().take(k).map(|&i| rows[i].clone()).collect();
        let mut labels = vec![0usize; n];
        // One DTW scratch for the whole fit: every assignment, DBA
        // alignment and final-cost evaluation reuses its DP rows instead of
        // allocating two fresh ones per pair.
        let mut scratch = DtwScratch::new();

        for _ in 0..self.max_iter {
            // Assignment.
            let mut changed = false;
            for (i, row) in rows.iter().enumerate() {
                let mut best = labels[i];
                let mut best_d = f64::INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    let d = dtw_with(centroid, row, opts, &mut scratch).unwrap_or(f64::INFINITY);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                if labels[i] != best {
                    labels[i] = best;
                    changed = true;
                }
            }
            // Refinement via DBA.
            for (c, centroid) in centroids.iter_mut().enumerate() {
                let members: Vec<&[f64]> = rows
                    .iter()
                    .zip(&labels)
                    .filter(|(_, &l)| l == c)
                    .map(|(r, _)| r.as_slice())
                    .collect();
                if members.is_empty() {
                    continue;
                }
                if let Ok(new_c) = dba_with(centroid, &members, opts, self.dba_iter, &mut scratch) {
                    *centroid = new_c;
                }
            }
            if !changed {
                break;
            }
        }

        let total_distance = rows
            .iter()
            .zip(&labels)
            .map(|(row, &l)| dtw_with(&centroids[l], row, opts, &mut scratch).unwrap_or(0.0))
            .sum();
        KdbaResult {
            labels,
            centroids,
            total_distance,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::adjusted_rand_index;

    /// Two bump shapes whose members are time-shifted — Euclidean k-Means
    /// struggles, DTW absorbs the warp.
    fn warped_bumps() -> (Vec<Vec<f64>>, Vec<usize>) {
        let m = 40;
        let bump = |center: f64, width: f64, i: usize| -> f64 {
            (-((i as f64 - center) / width).powi(2)).exp()
        };
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for s in 0..8 {
            let shift = s as f64;
            // Class 0: narrow early bump.
            rows.push((0..m).map(|i| bump(8.0 + shift, 2.0, i)).collect());
            truth.push(0);
            // Class 1: broad late bump.
            rows.push((0..m).map(|i| bump(28.0 + shift, 6.0, i)).collect());
            truth.push(1);
        }
        (rows, truth)
    }

    #[test]
    fn separates_warped_bumps() {
        let (rows, truth) = warped_bumps();
        let result = Kdba::new(2, 2).fit(&rows);
        let ari = adjusted_rand_index(&truth, &result.labels);
        assert!(ari > 0.8, "ARI {ari}");
    }

    #[test]
    fn deterministic() {
        let (rows, _) = warped_bumps();
        let a = Kdba::new(2, 4).fit(&rows);
        let b = Kdba::new(2, 4).fit(&rows);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn total_distance_finite_and_nonnegative() {
        let (rows, _) = warped_bumps();
        let r = Kdba::new(2, 0).fit(&rows);
        assert!(r.total_distance.is_finite());
        assert!(r.total_distance >= 0.0);
    }

    #[test]
    fn k_one_returns_global_average() {
        let (rows, _) = warped_bumps();
        let r = Kdba::new(1, 0).fit(&rows);
        assert!(r.labels.iter().all(|&l| l == 0));
        assert_eq!(r.centroids.len(), 1);
        assert_eq!(r.centroids[0].len(), rows[0].len());
    }

    #[test]
    fn explicit_window_respected() {
        let (rows, truth) = warped_bumps();
        let r = Kdba {
            window: Some(10),
            ..Kdba::new(2, 2)
        }
        .fit(&rows);
        let ari = adjusted_rand_index(&truth, &r.labels);
        assert!(ari > 0.8, "ARI {ari}");
    }

    #[test]
    #[should_panic(expected = "k must be > 0")]
    fn zero_k_panics() {
        Kdba::new(0, 0).fit(&[vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "at least one series")]
    fn empty_panics() {
        Kdba::new(1, 0).fit(&[]);
    }
}
