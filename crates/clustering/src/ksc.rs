//! k-Spectral-Centroid clustering (Yang & Leskovec, WSDM 2011).
//!
//! k-SC clusters time series under a distance that is invariant to
//! *scaling* and *shifting*: `d̂(x, y) = min_{α, q} ‖x − α·y(q)‖ / ‖x‖`,
//! where `y(q)` shifts `y` by `q` positions. The optimal α for a fixed
//! shift has the closed form `α = xᵀy(q) / ‖y(q)‖²`. Centroids are the
//! minimisers of the within-cluster spectral distance, found as an
//! eigenvector of an accumulated matrix (power iteration here).

use linalg::matrix::Matrix;
use linalg::power_iteration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tscore::distance::apply_shift;

/// Scale/shift-invariant k-SC distance between `x` and `y`.
///
/// Searches shifts `q ∈ [−max_shift, max_shift]` exhaustively.
pub fn ksc_distance(x: &[f64], y: &[f64], max_shift: usize) -> f64 {
    ksc_distance_with_shift(x, y, max_shift).0
}

/// k-SC distance plus the best shift of `y` relative to `x`.
pub fn ksc_distance_with_shift(x: &[f64], y: &[f64], max_shift: usize) -> (f64, isize) {
    assert_eq!(x.len(), y.len(), "k-SC requires equal lengths");
    let nx2: f64 = x.iter().map(|v| v * v).sum();
    if nx2 <= f64::EPSILON {
        return (0.0, 0);
    }
    let mut best = f64::INFINITY;
    let mut best_shift = 0isize;
    let ms = max_shift as isize;
    for q in -ms..=ms {
        let yq = apply_shift(y, q);
        let ny2: f64 = yq.iter().map(|v| v * v).sum();
        if ny2 <= f64::EPSILON {
            continue;
        }
        let dot: f64 = x.iter().zip(&yq).map(|(a, b)| a * b).sum();
        let alpha = dot / ny2;
        let dist2: f64 = x
            .iter()
            .zip(&yq)
            .map(|(a, b)| (a - alpha * b) * (a - alpha * b))
            .sum();
        let d = (dist2 / nx2).sqrt();
        if d < best {
            best = d;
            best_shift = q;
        }
    }
    if best.is_infinite() {
        // y had zero energy at every shift.
        (1.0, 0)
    } else {
        (best, best_shift)
    }
}

/// k-SC configuration.
#[derive(Debug, Clone, Copy)]
pub struct Ksc {
    /// Number of clusters.
    pub k: usize,
    /// Maximum alternation iterations.
    pub max_iter: usize,
    /// Maximum |shift| searched by the distance.
    pub max_shift: usize,
    /// RNG seed for the initial assignment.
    pub seed: u64,
}

/// Output of a k-SC fit.
#[derive(Debug, Clone)]
pub struct KscResult {
    /// Cluster label per series.
    pub labels: Vec<usize>,
    /// One centroid per cluster (unit norm).
    pub centroids: Vec<Vec<f64>>,
}

impl Ksc {
    /// Creates a configuration (`max_iter = 20`; shift budget = len/8 by
    /// default at fit time if `max_shift == usize::MAX`).
    pub fn new(k: usize, seed: u64) -> Self {
        Ksc {
            k,
            max_iter: 20,
            max_shift: usize::MAX,
            seed,
        }
    }

    /// Fits k-SC on equal-length rows.
    pub fn fit(&self, rows: &[Vec<f64>]) -> KscResult {
        assert!(self.k > 0, "k must be > 0");
        assert!(!rows.is_empty(), "k-SC requires at least one series");
        let m = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == m), "ragged input rows");
        let n = rows.len();
        let k = self.k.min(n);
        let max_shift = if self.max_shift == usize::MAX {
            (m / 8).max(1)
        } else {
            self.max_shift
        };

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
        for c in 0..k {
            if !labels.contains(&c) {
                let i = rng.gen_range(0..n);
                labels[i] = c;
            }
        }
        let mut centroids: Vec<Vec<f64>> = vec![vec![0.0; m]; k];

        for _ in 0..self.max_iter {
            // Centroid refinement.
            for (c, centroid) in centroids.iter_mut().enumerate() {
                let members: Vec<usize> = (0..n).filter(|&i| labels[i] == c).collect();
                if members.is_empty() {
                    continue;
                }
                *centroid = spectral_centroid(rows, &members, centroid, max_shift);
            }
            // Assignment.
            let mut changed = false;
            for (i, row) in rows.iter().enumerate() {
                let mut best = labels[i];
                let mut best_d = f64::INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    if centroid.iter().all(|&x| x == 0.0) {
                        continue;
                    }
                    let d = ksc_distance(row, centroid, max_shift);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                if best != labels[i] {
                    labels[i] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        KscResult { labels, centroids }
    }
}

/// Spectral centroid of a member set: the eigenvector minimising the summed
/// k-SC distance, i.e. the smallest eigenvector of
/// `M = Σᵢ (I − xᵢxᵢᵀ/‖xᵢ‖²)` for members aligned to the previous centroid.
///
/// We need the *smallest* eigenpair; power iteration finds the largest, so
/// it is run on `(c·I − M)` with `c` = #members (an upper bound on M's
/// spectrum since each summand is a projector with eigenvalues in {0, 1}).
fn spectral_centroid(
    rows: &[Vec<f64>],
    members: &[usize],
    previous: &[f64],
    max_shift: usize,
) -> Vec<f64> {
    let m = previous.len();
    let use_alignment = previous.iter().any(|&x| x != 0.0);
    let mut mat = Matrix::zeros(m, m);
    let mut count = 0.0;
    for &i in members {
        let aligned = if use_alignment {
            let (_, q) = ksc_distance_with_shift(previous, &rows[i], max_shift);
            apply_shift(&rows[i], q)
        } else {
            rows[i].clone()
        };
        let norm2: f64 = aligned.iter().map(|v| v * v).sum();
        if norm2 <= f64::EPSILON {
            continue;
        }
        count += 1.0;
        for a in 0..m {
            let va = aligned[a];
            if va == 0.0 {
                continue;
            }
            let row = mat.row_mut(a);
            for (b, &vb) in aligned.iter().enumerate() {
                row[b] += va * vb / norm2;
            }
        }
    }
    if count == 0.0 {
        return previous.to_vec();
    }
    // M = count·I − Σ xxᵀ/‖x‖²; we want M's smallest eigenvector, which is
    // the *largest* of Σ xxᵀ/‖x‖² — run power iteration directly on `mat`.
    let (_, mut centroid) = power_iteration(&mat, 300, 1e-10);
    // Sign convention: positively correlated with the member mean.
    let mean_dot: f64 = members
        .iter()
        .map(|&i| {
            rows[i]
                .iter()
                .zip(&centroid)
                .map(|(a, b)| a * b)
                .sum::<f64>()
        })
        .sum();
    if mean_dot < 0.0 {
        for x in &mut centroid {
            *x = -*x;
        }
    }
    centroid
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::adjusted_rand_index;

    #[test]
    fn distance_scale_invariant() {
        let x: Vec<f64> = (0..32).map(|i| (i as f64 * 0.4).sin()).collect();
        let y: Vec<f64> = x.iter().map(|v| 7.5 * v).collect();
        assert!(ksc_distance(&x, &y, 4) < 1e-9);
    }

    #[test]
    fn distance_shift_invariant() {
        let mut x = vec![0.0; 32];
        x[10] = 1.0;
        x[11] = 2.0;
        let y = apply_shift(&x, 3);
        let (d, q) = ksc_distance_with_shift(&x, &y, 5);
        assert!(d < 1e-9, "d = {d}");
        assert_eq!(q, -3);
    }

    #[test]
    fn distance_shift_budget_limits() {
        let mut x = vec![0.0; 32];
        x[10] = 1.0;
        let y = apply_shift(&x, 6);
        // Budget 2 cannot realign a shift of 6.
        assert!(ksc_distance(&x, &y, 2) > 0.9);
        assert!(ksc_distance(&x, &y, 8) < 1e-9);
    }

    #[test]
    fn distance_zero_energy() {
        let z = vec![0.0; 8];
        let x = vec![1.0; 8];
        assert_eq!(ksc_distance(&z, &x, 2), 0.0);
        assert!((ksc_distance(&x, &z, 2) - 1.0).abs() < 1e-12);
    }

    fn two_growth_patterns() -> (Vec<Vec<f64>>, Vec<usize>) {
        // Class 0: early spike; class 1: late ramp. Members differ by
        // amplitude and small shifts — the k-SC regime.
        let m = 48;
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for v in 0..8 {
            let amp = 1.0 + v as f64 * 0.7;
            let sh = (v % 3) as isize;
            let spike: Vec<f64> = (0..m)
                .map(|i| amp * (-((i as f64 - 10.0) / 3.0).powi(2)).exp())
                .collect();
            rows.push(apply_shift(&spike, sh));
            truth.push(0);
            let ramp: Vec<f64> = (0..m)
                .map(|i| amp * (i as f64 / m as f64).powi(3))
                .collect();
            rows.push(apply_shift(&ramp, sh));
            truth.push(1);
        }
        (rows, truth)
    }

    #[test]
    fn ksc_separates_patterns() {
        let (rows, truth) = two_growth_patterns();
        let result = Ksc::new(2, 5).fit(&rows);
        let ari = adjusted_rand_index(&truth, &result.labels);
        assert!(ari > 0.8, "ARI {ari}");
    }

    #[test]
    fn ksc_deterministic() {
        let (rows, _) = two_growth_patterns();
        let a = Ksc::new(2, 3).fit(&rows);
        let b = Ksc::new(2, 3).fit(&rows);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn centroid_of_scaled_copies_matches_shape() {
        let base: Vec<f64> = (0..24).map(|i| (i as f64 * 0.5).sin()).collect();
        let rows: Vec<Vec<f64>> = (1..=5)
            .map(|s| base.iter().map(|v| v * s as f64).collect())
            .collect();
        let members: Vec<usize> = (0..5).collect();
        let c = spectral_centroid(&rows, &members, &[0.0; 24], 2);
        // Distance from centroid to any member ~ 0.
        assert!(ksc_distance(&rows[0], &c, 2) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "k must be > 0")]
    fn zero_k_panics() {
        Ksc::new(0, 0).fit(&[vec![1.0, 2.0]]);
    }
}
