//! Internal cluster validation indices and automatic k selection.
//!
//! The Graphint sidebar asks the user for the number of clusters; when the
//! ground truth k is unknown, these indices let callers sweep k and pick
//! the best-supported value — a practical extension the demo leaves to the
//! user. Implemented: Calinski–Harabasz (higher = better),
//! Davies–Bouldin (lower = better), and an elbow-aware sweep driver.

use crate::kmeans::KMeans;

/// Per-cluster centroids and sizes for a labelled point set.
fn centroids_of(rows: &[Vec<f64>], labels: &[usize], k: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let d = rows.first().map_or(0, Vec::len);
    let mut centroids = vec![vec![0.0; d]; k];
    let mut sizes = vec![0usize; k];
    for (row, &l) in rows.iter().zip(labels) {
        sizes[l] += 1;
        for (c, &x) in centroids[l].iter_mut().zip(row) {
            *c += x;
        }
    }
    for (c, &s) in centroids.iter_mut().zip(&sizes) {
        if s > 0 {
            for v in c.iter_mut() {
                *v /= s as f64;
            }
        }
    }
    (centroids, sizes)
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Calinski–Harabasz index: ratio of between- to within-cluster dispersion,
/// scaled by the degrees of freedom. Higher = better-separated clusters.
/// Returns 0 for degenerate inputs (k < 2 or k ≥ n).
pub fn calinski_harabasz(rows: &[Vec<f64>], labels: &[usize]) -> f64 {
    let n = rows.len();
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    if n == 0 || k < 2 || k >= n {
        return 0.0;
    }
    let (centroids, sizes) = centroids_of(rows, labels, k);
    let d = rows[0].len();
    let mut global = vec![0.0; d];
    for row in rows {
        for (g, &x) in global.iter_mut().zip(row) {
            *g += x;
        }
    }
    for g in &mut global {
        *g /= n as f64;
    }
    let between: f64 = centroids
        .iter()
        .zip(&sizes)
        .filter(|(_, &s)| s > 0)
        .map(|(c, &s)| s as f64 * sq_dist(c, &global))
        .sum();
    let within: f64 = rows
        .iter()
        .zip(labels)
        .map(|(row, &l)| sq_dist(row, &centroids[l]))
        .sum();
    if within <= 1e-12 {
        // Perfectly tight clusters: index diverges; report a large value.
        return f64::MAX / 1e6;
    }
    (between / (k - 1) as f64) / (within / (n - k) as f64)
}

/// Davies–Bouldin index: mean over clusters of the worst ratio of summed
/// intra-cluster scatter to centroid separation. Lower = better. Returns
/// +∞-like large value for degenerate inputs.
pub fn davies_bouldin(rows: &[Vec<f64>], labels: &[usize]) -> f64 {
    let n = rows.len();
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    if n == 0 || k < 2 {
        return f64::MAX / 1e6;
    }
    let (centroids, sizes) = centroids_of(rows, labels, k);
    // Mean distance of members to their centroid.
    let mut scatter = vec![0.0f64; k];
    for (row, &l) in rows.iter().zip(labels) {
        scatter[l] += sq_dist(row, &centroids[l]).sqrt();
    }
    for (s, &sz) in scatter.iter_mut().zip(&sizes) {
        if sz > 0 {
            *s /= sz as f64;
        }
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for i in 0..k {
        if sizes[i] == 0 {
            continue;
        }
        let mut worst = 0.0f64;
        for j in 0..k {
            if i == j || sizes[j] == 0 {
                continue;
            }
            let sep = sq_dist(&centroids[i], &centroids[j]).sqrt();
            if sep <= 1e-12 {
                return f64::MAX / 1e6;
            }
            worst = worst.max((scatter[i] + scatter[j]) / sep);
        }
        total += worst;
        counted += 1;
    }
    if counted == 0 {
        f64::MAX / 1e6
    } else {
        total / counted as f64
    }
}

/// One candidate k with its scores.
#[derive(Debug, Clone, Copy)]
pub struct KCandidate {
    /// The number of clusters evaluated.
    pub k: usize,
    /// Calinski–Harabasz (higher better).
    pub calinski_harabasz: f64,
    /// Davies–Bouldin (lower better).
    pub davies_bouldin: f64,
    /// Mean silhouette (higher better).
    pub silhouette: f64,
}

/// Sweeps `k ∈ k_range` with k-Means and scores each candidate on all
/// three indices. Returns the candidates plus the k that wins the most
/// index votes (ties toward smaller k, Occam-style).
pub fn select_k(
    rows: &[Vec<f64>],
    k_range: std::ops::RangeInclusive<usize>,
    seed: u64,
) -> (Vec<KCandidate>, usize) {
    assert!(!rows.is_empty(), "select_k requires data");
    let candidates: Vec<KCandidate> = k_range
        .filter(|&k| k >= 2 && k < rows.len())
        .map(|k| {
            let labels = KMeans::new(k, seed).fit(rows).labels;
            KCandidate {
                k,
                calinski_harabasz: calinski_harabasz(rows, &labels),
                davies_bouldin: davies_bouldin(rows, &labels),
                silhouette: crate::metrics::silhouette(rows, &labels),
            }
        })
        .collect();
    assert!(!candidates.is_empty(), "empty k range after clamping");
    let best_ch = candidates
        .iter()
        .max_by(|a, b| {
            a.calinski_harabasz
                .partial_cmp(&b.calinski_harabasz)
                .expect("NaN")
        })
        .expect("non-empty")
        .k;
    let best_db = candidates
        .iter()
        .min_by(|a, b| {
            a.davies_bouldin
                .partial_cmp(&b.davies_bouldin)
                .expect("NaN")
        })
        .expect("non-empty")
        .k;
    let best_sil = candidates
        .iter()
        .max_by(|a, b| a.silhouette.partial_cmp(&b.silhouette).expect("NaN"))
        .expect("non-empty")
        .k;
    // Majority vote over the three indices; ties toward the smallest k.
    let mut votes = std::collections::BTreeMap::new();
    for k in [best_ch, best_db, best_sil] {
        *votes.entry(k).or_insert(0usize) += 1;
    }
    let winner = votes
        .iter()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
        .map(|(&k, _)| k)
        .expect("non-empty votes");
    (candidates, winner)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(k: usize, per: usize) -> Vec<Vec<f64>> {
        let mut rows = Vec::new();
        for c in 0..k {
            for i in 0..per {
                let jitter = (i % 5) as f64 * 0.05;
                rows.push(vec![c as f64 * 10.0 + jitter, c as f64 * -7.0 - jitter]);
            }
        }
        rows
    }

    #[test]
    fn ch_prefers_true_partition() {
        let rows = blobs(3, 10);
        let truth: Vec<usize> = (0..30).map(|i| i / 10).collect();
        let wrong: Vec<usize> = (0..30).map(|i| i % 3).collect();
        assert!(calinski_harabasz(&rows, &truth) > calinski_harabasz(&rows, &wrong));
    }

    #[test]
    fn db_prefers_true_partition() {
        let rows = blobs(3, 10);
        let truth: Vec<usize> = (0..30).map(|i| i / 10).collect();
        let wrong: Vec<usize> = (0..30).map(|i| i % 3).collect();
        assert!(davies_bouldin(&rows, &truth) < davies_bouldin(&rows, &wrong));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(calinski_harabasz(&[], &[]), 0.0);
        let rows = blobs(2, 5);
        let one_cluster = vec![0usize; 10];
        assert_eq!(calinski_harabasz(&rows, &one_cluster), 0.0);
        assert!(davies_bouldin(&rows, &one_cluster) > 1e6);
        // Identical centroids → DB blows up instead of dividing by zero.
        let rows2 = vec![vec![1.0, 1.0]; 6];
        let alternating: Vec<usize> = (0..6).map(|i| i % 2).collect();
        assert!(davies_bouldin(&rows2, &alternating) > 1e6);
    }

    #[test]
    fn select_k_finds_three_blobs() {
        let rows = blobs(3, 12);
        let (candidates, best) = select_k(&rows, 2..=6, 0);
        assert_eq!(best, 3, "candidates: {candidates:?}");
        assert_eq!(candidates.len(), 5);
        for c in &candidates {
            assert!(c.calinski_harabasz >= 0.0);
            assert!(c.davies_bouldin >= 0.0);
            assert!((-1.0..=1.0).contains(&c.silhouette));
        }
    }

    #[test]
    fn select_k_two_blobs() {
        let rows = blobs(2, 15);
        let (_, best) = select_k(&rows, 2..=5, 1);
        assert_eq!(best, 2);
    }

    #[test]
    fn select_k_clamps_range() {
        let rows = blobs(2, 3); // 6 points
        let (candidates, best) = select_k(&rows, 2..=20, 0);
        assert!(candidates.iter().all(|c| c.k < 6));
        assert!(best >= 2);
    }

    #[test]
    #[should_panic(expected = "requires data")]
    fn empty_rows_panic() {
        select_k(&[], 2..=3, 0);
    }
}
