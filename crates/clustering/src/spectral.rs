//! Spectral clustering (Ng–Jordan–Weiss normalised variant).
//!
//! k-Graph's Consensus Clustering step runs spectral clustering on the
//! consensus matrix (treated as a precomputed affinity); the Benchmark frame
//! also uses it as a raw baseline with an RBF affinity.

use crate::kmeans::KMeans;
use linalg::eigen::symmetric_eigen;
use linalg::matrix::Matrix;

/// Options for [`spectral_clustering`].
#[derive(Debug, Clone, Copy)]
pub struct SpectralOptions {
    /// Number of clusters.
    pub k: usize,
    /// Seed for the k-Means step on the spectral embedding.
    pub seed: u64,
    /// Restarts for the k-Means step.
    pub n_init: usize,
}

impl SpectralOptions {
    /// Default options for `k` clusters.
    pub fn new(k: usize, seed: u64) -> Self {
        SpectralOptions {
            k,
            seed,
            n_init: 10,
        }
    }
}

/// Spectral clustering on a precomputed symmetric affinity matrix.
///
/// Pipeline: symmetric normalised Laplacian `L = I − D^{-1/2} A D^{-1/2}`,
/// bottom-k eigenvectors (computed exactly via Jacobi), row-normalised
/// spectral embedding, k-Means.
///
/// Panics if the affinity is not square or `k == 0`. Negative affinities are
/// clamped to zero; isolated rows (zero degree) are tolerated.
pub fn spectral_clustering(affinity: &Matrix, opts: SpectralOptions) -> Vec<usize> {
    assert!(opts.k > 0, "k must be > 0");
    assert_eq!(affinity.rows(), affinity.cols(), "affinity must be square");
    let n = affinity.rows();
    if n == 0 {
        return Vec::new();
    }
    if opts.k == 1 {
        return vec![0; n];
    }

    // Degree vector (clamping negatives keeps the Laplacian PSD-ish).
    let mut degrees = vec![0.0f64; n];
    for i in 0..n {
        for j in 0..n {
            degrees[i] += affinity[(i, j)].max(0.0);
        }
    }
    let inv_sqrt: Vec<f64> = degrees
        .iter()
        .map(|&d| if d > 1e-12 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();

    // L_sym = I − D^{-1/2} A D^{-1/2}
    let mut lap = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            let a = affinity[(i, j)].max(0.0);
            let v = -inv_sqrt[i] * a * inv_sqrt[j];
            lap[(i, j)] = if i == j { 1.0 + v } else { v };
        }
    }

    // Bottom-k eigenvectors = last k columns (Jacobi sorts descending).
    let eig = symmetric_eigen(&lap);
    let k = opts.k.min(n);
    let mut embedding = vec![vec![0.0f64; k]; n];
    for (c, col) in (n - k..n).rev().enumerate() {
        // col iterates the smallest eigenvalues; order within the embedding
        // does not matter for k-Means.
        for (i, e_row) in embedding.iter_mut().enumerate() {
            e_row[c] = eig.vectors[(i, col)];
        }
    }
    // Row-normalise (NJW).
    for row in &mut embedding {
        let norm = row.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for x in row.iter_mut() {
                *x /= norm;
            }
        }
    }

    KMeans {
        k: opts.k,
        max_iter: 200,
        n_init: opts.n_init,
        seed: opts.seed,
    }
    .fit(&embedding)
    .labels
}

/// Gaussian (RBF) affinity between rows: `exp(−‖x−y‖² / (2σ²))`.
///
/// `sigma = None` uses the median pairwise distance (a robust default).
pub fn rbf_affinity(rows: &[Vec<f64>], sigma: Option<f64>) -> Matrix {
    let n = rows.len();
    let mut d2 = Matrix::zeros(n, n);
    let mut all: Vec<f64> = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            let d: f64 = rows[i]
                .iter()
                .zip(&rows[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            d2[(i, j)] = d;
            d2[(j, i)] = d;
            all.push(d.sqrt());
        }
    }
    let sigma = sigma.unwrap_or_else(|| {
        if all.is_empty() {
            1.0
        } else {
            all.sort_by(|a, b| a.partial_cmp(b).expect("NaN distance"));
            let med = all[all.len() / 2];
            if med > 1e-12 {
                med
            } else {
                1.0
            }
        }
    });
    let denom = 2.0 * sigma * sigma;
    Matrix::from_fn(n, n, |i, j| {
        if i == j {
            1.0
        } else {
            (-d2[(i, j)] / denom).exp()
        }
    })
}

/// k-nearest-neighbour affinity (symmetrised: edge if either side lists the
/// other among its `k` nearest).
pub fn knn_affinity(rows: &[Vec<f64>], k: usize) -> Matrix {
    let n = rows.len();
    let mut aff = Matrix::zeros(n, n);
    for i in 0..n {
        let mut dists: Vec<(usize, f64)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                let d: f64 = rows[i]
                    .iter()
                    .zip(&rows[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                (j, d)
            })
            .collect();
        dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN distance"));
        for &(j, _) in dists.iter().take(k) {
            aff[(i, j)] = 1.0;
            aff[(j, i)] = 1.0;
        }
    }
    aff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::adjusted_rand_index;

    fn two_blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for i in 0..15 {
            rows.push(vec![0.0 + (i % 4) as f64 * 0.1, (i % 3) as f64 * 0.1]);
            truth.push(0);
            rows.push(vec![
                10.0 + (i % 4) as f64 * 0.1,
                10.0 + (i % 3) as f64 * 0.1,
            ]);
            truth.push(1);
        }
        (rows, truth)
    }

    #[test]
    fn block_diagonal_affinity_recovers_blocks() {
        // Perfect consensus-style matrix: 1 within blocks, 0 across.
        let n = 12;
        let aff = Matrix::from_fn(n, n, |i, j| if (i < 6) == (j < 6) { 1.0 } else { 0.0 });
        let labels = spectral_clustering(&aff, SpectralOptions::new(2, 0));
        let truth: Vec<usize> = (0..n).map(|i| usize::from(i >= 6)).collect();
        assert!((adjusted_rand_index(&truth, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn three_blocks() {
        let n = 15;
        let block = |i: usize| i / 5;
        let aff = Matrix::from_fn(n, n, |i, j| if block(i) == block(j) { 0.9 } else { 0.02 });
        let labels = spectral_clustering(&aff, SpectralOptions::new(3, 1));
        let truth: Vec<usize> = (0..n).map(block).collect();
        assert!((adjusted_rand_index(&truth, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rbf_affinity_then_spectral_separates_blobs() {
        let (rows, truth) = two_blobs();
        let aff = rbf_affinity(&rows, None);
        let labels = spectral_clustering(&aff, SpectralOptions::new(2, 0));
        assert!((adjusted_rand_index(&truth, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn knn_affinity_symmetric() {
        let (rows, _) = two_blobs();
        let aff = knn_affinity(&rows, 3);
        assert!(aff.is_symmetric(1e-12));
        // Every node has at least k neighbours marked.
        for i in 0..rows.len() {
            let row_sum: f64 = (0..rows.len()).map(|j| aff[(i, j)]).sum();
            assert!(row_sum >= 3.0);
        }
    }

    #[test]
    fn k_one_trivial() {
        let aff = Matrix::identity(5);
        let labels = spectral_clustering(&aff, SpectralOptions::new(1, 0));
        assert_eq!(labels, vec![0; 5]);
    }

    #[test]
    fn empty_affinity() {
        let labels = spectral_clustering(&Matrix::zeros(0, 0), SpectralOptions::new(2, 0));
        assert!(labels.is_empty());
    }

    #[test]
    fn isolated_nodes_tolerated() {
        // Node 4 has zero affinity to everyone.
        let mut aff = Matrix::zeros(5, 5);
        for i in 0..4 {
            for j in 0..4 {
                aff[(i, j)] = if (i < 2) == (j < 2) { 1.0 } else { 0.0 };
            }
        }
        let labels = spectral_clustering(&aff, SpectralOptions::new(2, 0));
        assert_eq!(labels.len(), 5);
        assert!(labels.iter().all(|&l| l < 2));
    }

    #[test]
    fn rbf_degenerate_identical_points() {
        let rows = vec![vec![1.0, 1.0]; 4];
        let aff = rbf_affinity(&rows, None);
        // All affinities 1 (distance 0, sigma fallback 1).
        for i in 0..4 {
            for j in 0..4 {
                assert!((aff[(i, j)] - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_affinity_panics() {
        spectral_clustering(&Matrix::zeros(2, 3), SpectralOptions::new(2, 0));
    }

    #[test]
    fn deterministic() {
        let (rows, _) = two_blobs();
        let aff = rbf_affinity(&rows, Some(2.0));
        let a = spectral_clustering(&aff, SpectralOptions::new(2, 5));
        let b = spectral_clustering(&aff, SpectralOptions::new(2, 5));
        assert_eq!(a, b);
    }
}
