//! k-Shape clustering (Paparrizos & Gravano, SIGMOD 2015).
//!
//! k-Shape iterates like k-Means but uses the Shape-Based Distance (SBD,
//! derived from normalised cross-correlation) for assignment and *shape
//! extraction* — the dominant eigenvector of an alignment matrix — for
//! centroid refinement. The NCC here is FFT-backed (O(m log m)).

use linalg::fft::cross_correlation_fft;
use linalg::matrix::Matrix;
use linalg::power_iteration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tscore::transform::znorm;

/// FFT-backed normalised cross-correlation (same layout as
/// `tscore::distance::ncc`: length `2m−1`, index `s` = shift `s−(m−1)`).
pub fn ncc_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    let denom = if na * nb <= f64::EPSILON {
        1.0
    } else {
        na * nb
    };
    cross_correlation_fft(a, b)
        .into_iter()
        .map(|v| v / denom)
        .collect()
}

/// FFT-backed Shape-Based Distance: `1 − max_s NCC(a, b)(s)` ∈ [0, 2].
pub fn sbd_fft(a: &[f64], b: &[f64]) -> f64 {
    1.0 - ncc_fft(a, b).into_iter().fold(f64::NEG_INFINITY, f64::max)
}

/// SBD together with the maximising shift of `b` relative to `a`.
pub fn sbd_fft_with_shift(a: &[f64], b: &[f64]) -> (f64, isize) {
    let cc = ncc_fft(a, b);
    let mut best = 0usize;
    for (i, &v) in cc.iter().enumerate() {
        if v > cc[best] {
            best = i;
        }
    }
    (1.0 - cc[best], best as isize - (a.len() as isize - 1))
}

/// Configuration for [`KShape`].
#[derive(Debug, Clone, Copy)]
pub struct KShape {
    /// Number of clusters.
    pub k: usize,
    /// Maximum refinement iterations.
    pub max_iter: usize,
    /// RNG seed for the initial random assignment.
    pub seed: u64,
}

/// Output of a k-Shape fit.
#[derive(Debug, Clone)]
pub struct KShapeResult {
    /// Cluster label per series.
    pub labels: Vec<usize>,
    /// One z-normalised shape (centroid) per cluster.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of SBD distances to assigned centroids.
    pub total_distance: f64,
}

impl KShape {
    /// Creates a configuration with `max_iter = 30`.
    pub fn new(k: usize, seed: u64) -> Self {
        KShape {
            k,
            max_iter: 30,
            seed,
        }
    }

    /// Fits k-Shape on equal-length rows (z-normalised internally).
    ///
    /// Panics if `k == 0`, input is empty or rows are ragged.
    pub fn fit(&self, rows: &[Vec<f64>]) -> KShapeResult {
        assert!(self.k > 0, "k must be > 0");
        assert!(!rows.is_empty(), "k-Shape requires at least one series");
        let m = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == m), "ragged input rows");
        let n = rows.len();
        let k = self.k.min(n);
        let data: Vec<Vec<f64>> = rows.iter().map(|r| znorm(r)).collect();

        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
        // Guarantee no initially empty cluster when n ≥ k.
        for c in 0..k {
            if !labels.contains(&c) {
                let idx = rng.gen_range(0..n);
                labels[idx] = c;
            }
        }
        let mut centroids: Vec<Vec<f64>> = vec![vec![0.0; m]; k];

        for _ in 0..self.max_iter {
            // Refinement: extract a shape per cluster.
            for (c, centroid) in centroids.iter_mut().enumerate() {
                let members: Vec<&[f64]> = data
                    .iter()
                    .zip(&labels)
                    .filter(|(_, &l)| l == c)
                    .map(|(r, _)| r.as_slice())
                    .collect();
                if members.is_empty() {
                    continue;
                }
                *centroid = shape_extraction(&members, centroid);
            }
            // Assignment by SBD.
            let mut changed = false;
            for (i, row) in data.iter().enumerate() {
                let mut best = labels[i];
                let mut best_d = f64::INFINITY;
                for (c, centroid) in centroids.iter().enumerate() {
                    let d = if centroid.iter().all(|&x| x == 0.0) {
                        f64::INFINITY
                    } else {
                        sbd_fft(centroid, row)
                    };
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                if best != labels[i] {
                    labels[i] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let total_distance = data
            .iter()
            .zip(&labels)
            .map(|(row, &l)| {
                if centroids[l].iter().all(|&x| x == 0.0) {
                    0.0
                } else {
                    sbd_fft(&centroids[l], row)
                }
            })
            .sum();
        KShapeResult {
            labels,
            centroids,
            total_distance,
        }
    }
}

/// Shape extraction: the dominant eigenvector of `Q·S·Q` where `S` is the
/// scatter of the members aligned (via SBD shift) to the previous centroid
/// and `Q = I − (1/m)·𝟙` centres it.
///
/// Returns a z-normalised shape, sign-fixed to correlate positively with the
/// aligned-member mean.
pub fn shape_extraction(members: &[&[f64]], previous: &[f64]) -> Vec<f64> {
    let m = previous.len();
    // Align members to the previous centroid (first iteration: no shift).
    let use_alignment = previous.iter().any(|&x| x != 0.0);
    // Shift and normalise each member with one allocation, not two: the
    // shifted row is z-normalised in place instead of being copied again.
    let aligned: Vec<Vec<f64>> = members
        .iter()
        .map(|&s| {
            let mut row = if use_alignment {
                let (_, shift) = sbd_fft_with_shift(previous, s);
                tscore::distance::apply_shift(s, shift)
            } else {
                s.to_vec()
            };
            tscore::transform::znorm_inplace(&mut row);
            row
        })
        .collect();

    // S = Σ zᵀz over aligned members.
    let mut s_mat = Matrix::zeros(m, m);
    for z in &aligned {
        for i in 0..m {
            let zi = z[i];
            if zi == 0.0 {
                continue;
            }
            let row = s_mat.row_mut(i);
            for (j, &zj) in z.iter().enumerate() {
                row[j] += zi * zj;
            }
        }
    }
    // M = Q S Q with Q = I − (1/m)·𝟙. Expanding keeps it O(m²):
    // (QSQ)_{ij} = S_{ij} − r_i − c_j + g, with row/col/grand means of S.
    let mut row_mean = vec![0.0; m];
    let mut col_mean = vec![0.0; m];
    let mut grand = 0.0;
    for i in 0..m {
        for j in 0..m {
            let v = s_mat[(i, j)];
            row_mean[i] += v;
            col_mean[j] += v;
            grand += v;
        }
    }
    for v in &mut row_mean {
        *v /= m as f64;
    }
    for v in &mut col_mean {
        *v /= m as f64;
    }
    grand /= (m * m) as f64;
    let mut q_mat = Matrix::zeros(m, m);
    for i in 0..m {
        for j in 0..m {
            q_mat[(i, j)] = s_mat[(i, j)] - row_mean[i] - col_mean[j] + grand;
        }
    }

    let (_, mut shape) = power_iteration(&q_mat, 300, 1e-9);
    // Fix sign: the shape should correlate positively with the member mean.
    let mean: Vec<f64> = (0..m)
        .map(|i| aligned.iter().map(|z| z[i]).sum::<f64>() / aligned.len().max(1) as f64)
        .collect();
    let dot: f64 = shape.iter().zip(&mean).map(|(a, b)| a * b).sum();
    if dot < 0.0 {
        for x in &mut shape {
            *x = -*x;
        }
    }
    znorm(&shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::adjusted_rand_index;
    use tscore::distance as tsd;

    #[test]
    fn ncc_fft_matches_direct() {
        let a = [1.0, 2.0, -1.0, 0.5, 3.0, -2.0];
        let b = [0.5, -1.0, 2.0, 1.0, -0.5, 1.5];
        let fast = ncc_fft(&a, &b);
        let slow = tsd::ncc(&a, &b).unwrap();
        assert_eq!(fast.len(), slow.len());
        for (f, s) in fast.iter().zip(&slow) {
            assert!((f - s).abs() < 1e-9, "{f} vs {s}");
        }
    }

    #[test]
    fn sbd_fft_matches_direct() {
        let a: Vec<f64> = (0..40).map(|i| (i as f64 * 0.4).sin()).collect();
        let b: Vec<f64> = (0..40).map(|i| (i as f64 * 0.4 + 1.0).sin()).collect();
        let fast = sbd_fft(&a, &b);
        let slow = tsd::sbd(&a, &b).unwrap();
        assert!((fast - slow).abs() < 1e-9);
    }

    #[test]
    fn sbd_fft_shift_matches_direct() {
        let mut a = vec![0.0; 32];
        a[5] = 1.0;
        a[6] = 2.0;
        let mut b = vec![0.0; 32];
        b[11] = 1.0;
        b[12] = 2.0;
        let (d_fast, s_fast) = sbd_fft_with_shift(&a, &b);
        let (d_slow, s_slow) = tsd::sbd_with_shift(&a, &b).unwrap();
        assert!((d_fast - d_slow).abs() < 1e-9);
        assert_eq!(s_fast, s_slow);
    }

    /// Two clearly different shapes, each instantiated with small phase
    /// shifts — exactly the regime SBD is built for.
    fn two_shapes() -> (Vec<Vec<f64>>, Vec<usize>) {
        let m = 64;
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for shift in 0..10 {
            // Class 0: one sine period, phase-shifted.
            rows.push(
                (0..m)
                    .map(|i| ((i + shift) as f64 * 2.0 * std::f64::consts::PI / m as f64).sin())
                    .collect(),
            );
            truth.push(0);
            // Class 1: three sine periods, phase-shifted.
            rows.push(
                (0..m)
                    .map(|i| ((i + shift) as f64 * 6.0 * std::f64::consts::PI / m as f64).sin())
                    .collect(),
            );
            truth.push(1);
        }
        (rows, truth)
    }

    #[test]
    fn kshape_separates_frequencies() {
        let (rows, truth) = two_shapes();
        let result = KShape::new(2, 3).fit(&rows);
        let ari = adjusted_rand_index(&truth, &result.labels);
        assert!(ari > 0.95, "ARI {ari}");
        assert_eq!(result.centroids.len(), 2);
    }

    #[test]
    fn kshape_centroids_are_znormed() {
        let (rows, _) = two_shapes();
        let result = KShape::new(2, 3).fit(&rows);
        for c in &result.centroids {
            let mean: f64 = c.iter().sum::<f64>() / c.len() as f64;
            assert!(mean.abs() < 1e-9);
            let var: f64 = c.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / c.len() as f64;
            assert!((var.sqrt() - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn kshape_deterministic() {
        let (rows, _) = two_shapes();
        let a = KShape::new(2, 7).fit(&rows);
        let b = KShape::new(2, 7).fit(&rows);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn kshape_single_cluster() {
        let (rows, _) = two_shapes();
        let r = KShape::new(1, 0).fit(&rows);
        assert!(r.labels.iter().all(|&l| l == 0));
        assert!(r.total_distance.is_finite());
    }

    #[test]
    fn shape_extraction_of_identical_members() {
        let s: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
        let members: Vec<&[f64]> = vec![&s, &s, &s];
        let shape = shape_extraction(&members, &vec![0.0; 32]);
        // Shape must correlate almost perfectly with the member.
        let d = sbd_fft(&shape, &znorm(&s));
        assert!(d < 1e-6, "SBD to member {d}");
    }

    #[test]
    #[should_panic(expected = "k must be > 0")]
    fn zero_k_panics() {
        KShape::new(0, 0).fit(&[vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "at least one series")]
    fn empty_panics() {
        KShape::new(2, 0).fit(&[]);
    }
}
