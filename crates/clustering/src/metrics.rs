//! External and internal clustering quality metrics.
//!
//! External metrics compare a predicted partition against ground truth via
//! the contingency table: Rand Index, Adjusted Rand Index (the measure
//! Graphint reports per frame), Normalised/Adjusted Mutual Information,
//! purity and the homogeneity/completeness/V-measure family. Internal
//! metrics (silhouette, inertia) require only the data.

/// Dense contingency table between two labelings.
///
/// `table[i][j]` counts points with true label `i` and predicted label `j`.
#[derive(Debug, Clone)]
pub struct Contingency {
    /// The counts.
    pub table: Vec<Vec<usize>>,
    /// Row sums (true-class sizes).
    pub row_sums: Vec<usize>,
    /// Column sums (predicted-cluster sizes).
    pub col_sums: Vec<usize>,
    /// Total number of points.
    pub n: usize,
}

impl Contingency {
    /// Builds the contingency table; panics if the labelings have different
    /// lengths. Labels are compacted, so arbitrary label values are fine.
    pub fn new(truth: &[usize], pred: &[usize]) -> Self {
        assert_eq!(truth.len(), pred.len(), "labelings must have equal length");
        let (tmap, rows) = compact(truth);
        let (pmap, cols) = compact(pred);
        let mut table = vec![vec![0usize; cols]; rows];
        for (&t, &p) in truth.iter().zip(pred) {
            table[tmap[&t]][pmap[&p]] += 1;
        }
        let row_sums: Vec<usize> = table.iter().map(|r| r.iter().sum()).collect();
        let mut col_sums = vec![0usize; cols];
        for row in &table {
            for (j, &c) in row.iter().enumerate() {
                col_sums[j] += c;
            }
        }
        Contingency {
            table,
            row_sums,
            col_sums,
            n: truth.len(),
        }
    }
}

fn compact(labels: &[usize]) -> (std::collections::HashMap<usize, usize>, usize) {
    let mut map = std::collections::HashMap::new();
    for &l in labels {
        let next = map.len();
        map.entry(l).or_insert(next);
    }
    let k = map.len();
    (map, k)
}

#[inline]
fn comb2(n: usize) -> f64 {
    if n < 2 {
        0.0
    } else {
        n as f64 * (n - 1) as f64 / 2.0
    }
}

/// Rand Index ∈ [0, 1]: fraction of point pairs on which the two
/// partitions agree (together-together or apart-apart).
pub fn rand_index(truth: &[usize], pred: &[usize]) -> f64 {
    let c = Contingency::new(truth, pred);
    let total = comb2(c.n);
    if total == 0.0 {
        return 1.0;
    }
    let sum_nij: f64 = c.table.iter().flatten().map(|&x| comb2(x)).sum();
    let sum_a: f64 = c.row_sums.iter().map(|&x| comb2(x)).sum();
    let sum_b: f64 = c.col_sums.iter().map(|&x| comb2(x)).sum();
    // agreements = pairs together in both + pairs apart in both
    let together_both = sum_nij;
    let apart_both = total - sum_a - sum_b + sum_nij;
    (together_both + apart_both) / total
}

/// Adjusted Rand Index ∈ [−1, 1]: Rand index corrected for chance.
/// 1 for identical partitions, ~0 for independent ones.
pub fn adjusted_rand_index(truth: &[usize], pred: &[usize]) -> f64 {
    let c = Contingency::new(truth, pred);
    let total = comb2(c.n);
    if total == 0.0 {
        return 1.0;
    }
    let sum_nij: f64 = c.table.iter().flatten().map(|&x| comb2(x)).sum();
    let sum_a: f64 = c.row_sums.iter().map(|&x| comb2(x)).sum();
    let sum_b: f64 = c.col_sums.iter().map(|&x| comb2(x)).sum();
    let expected = sum_a * sum_b / total;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < 1e-12 {
        // Both partitions are single-cluster (or all-singleton): identical
        // structure means perfect agreement.
        return 1.0;
    }
    (sum_nij - expected) / (max_index - expected)
}

/// Mutual information (nats) between two labelings.
pub fn mutual_information(truth: &[usize], pred: &[usize]) -> f64 {
    let c = Contingency::new(truth, pred);
    let n = c.n as f64;
    if c.n == 0 {
        return 0.0;
    }
    let mut mi = 0.0;
    for (i, row) in c.table.iter().enumerate() {
        for (j, &nij) in row.iter().enumerate() {
            if nij == 0 {
                continue;
            }
            let pij = nij as f64 / n;
            let pi = c.row_sums[i] as f64 / n;
            let pj = c.col_sums[j] as f64 / n;
            mi += pij * (pij / (pi * pj)).ln();
        }
    }
    mi.max(0.0)
}

/// Shannon entropy (nats) of a labeling.
pub fn label_entropy(labels: &[usize]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    let (map, k) = compact(labels);
    let mut counts = vec![0usize; k];
    for &l in labels {
        counts[map[&l]] += 1;
    }
    let n = labels.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Normalised Mutual Information with sqrt normalisation:
/// `NMI = MI / sqrt(H(truth) · H(pred))` ∈ [0, 1].
pub fn normalized_mutual_information(truth: &[usize], pred: &[usize]) -> f64 {
    let mi = mutual_information(truth, pred);
    let ht = label_entropy(truth);
    let hp = label_entropy(pred);
    if ht <= 1e-12 && hp <= 1e-12 {
        // Both partitions trivial → identical.
        return 1.0;
    }
    let denom = (ht * hp).sqrt();
    if denom <= 1e-12 {
        return 0.0;
    }
    (mi / denom).clamp(0.0, 1.0)
}

/// Expected mutual information under the permutation model (hypergeometric),
/// the correction term of AMI. O(k_t · k_p · n) worst case but the sums are
/// short in practice.
pub fn expected_mutual_information(c: &Contingency) -> f64 {
    let n = c.n;
    if n == 0 {
        return 0.0;
    }
    let nf = n as f64;
    // ln(x!) table for 0..=n.
    let mut ln_fact = vec![0.0f64; n + 1];
    for i in 1..=n {
        ln_fact[i] = ln_fact[i - 1] + (i as f64).ln();
    }
    let mut emi = 0.0;
    for &a in &c.row_sums {
        for &b in &c.col_sums {
            let lo = (a + b).saturating_sub(n).max(1);
            let hi = a.min(b);
            for nij in lo..=hi {
                let nij_f = nij as f64;
                let term1 = nij_f / nf * ((nf * nij_f) / (a as f64 * b as f64)).ln();
                // Hypergeometric probability of the cell value nij.
                // `n + nij − a − b` is ≥ 0 by the loop's lower bound, but
                // must be computed in this order to avoid usize underflow.
                let ln_p = ln_fact[a] + ln_fact[b] + ln_fact[n - a] + ln_fact[n - b]
                    - ln_fact[n]
                    - ln_fact[nij]
                    - ln_fact[a - nij]
                    - ln_fact[b - nij]
                    - ln_fact[n + nij - a - b];
                emi += term1 * ln_p.exp();
            }
        }
    }
    emi
}

/// Adjusted Mutual Information (max normalisation):
/// `AMI = (MI − E[MI]) / (max(H_t, H_p) − E[MI])`.
pub fn adjusted_mutual_information(truth: &[usize], pred: &[usize]) -> f64 {
    let c = Contingency::new(truth, pred);
    let mi = mutual_information(truth, pred);
    let ht = label_entropy(truth);
    let hp = label_entropy(pred);
    if ht <= 1e-12 && hp <= 1e-12 {
        return 1.0;
    }
    let emi = expected_mutual_information(&c);
    let denom = ht.max(hp) - emi;
    if denom.abs() <= 1e-12 {
        return 0.0;
    }
    ((mi - emi) / denom).clamp(-1.0, 1.0)
}

/// Purity ∈ (0, 1]: each predicted cluster votes for its majority true
/// class; purity is the fraction of correctly "voted" points.
pub fn purity(truth: &[usize], pred: &[usize]) -> f64 {
    let c = Contingency::new(truth, pred);
    if c.n == 0 {
        return 1.0;
    }
    let mut correct = 0usize;
    for j in 0..c.col_sums.len() {
        let best = c.table.iter().map(|row| row[j]).max().unwrap_or(0);
        correct += best;
    }
    correct as f64 / c.n as f64
}

/// Homogeneity: 1 − H(truth | pred) / H(truth). 1 when every cluster holds
/// a single class.
pub fn homogeneity(truth: &[usize], pred: &[usize]) -> f64 {
    let ht = label_entropy(truth);
    if ht <= 1e-12 {
        return 1.0;
    }
    let mi = mutual_information(truth, pred);
    (mi / ht).clamp(0.0, 1.0)
}

/// Completeness: 1 − H(pred | truth) / H(pred). 1 when every class lands in
/// a single cluster.
pub fn completeness(truth: &[usize], pred: &[usize]) -> f64 {
    homogeneity(pred, truth)
}

/// V-measure: harmonic mean of homogeneity and completeness.
pub fn v_measure(truth: &[usize], pred: &[usize]) -> f64 {
    let h = homogeneity(truth, pred);
    let c = completeness(truth, pred);
    if h + c <= 1e-12 {
        return 0.0;
    }
    2.0 * h * c / (h + c)
}

/// Sum of squared distances from each point to its cluster centroid.
pub fn inertia(rows: &[Vec<f64>], labels: &[usize], centroids: &[Vec<f64>]) -> f64 {
    rows.iter()
        .zip(labels)
        .map(|(row, &l)| {
            centroids[l]
                .iter()
                .zip(row)
                .map(|(c, x)| (c - x) * (c - x))
                .sum::<f64>()
        })
        .sum()
}

/// Mean silhouette coefficient ∈ [−1, 1] under Euclidean distance.
///
/// Returns 0.0 when fewer than 2 clusters are present (undefined case).
pub fn silhouette(rows: &[Vec<f64>], labels: &[usize]) -> f64 {
    let n = rows.len();
    if n == 0 {
        return 0.0;
    }
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    let mut sizes = vec![0usize; k];
    for &l in labels {
        sizes[l] += 1;
    }
    if sizes.iter().filter(|&&s| s > 0).count() < 2 {
        return 0.0;
    }
    let dist = |a: &[f64], b: &[f64]| -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    };
    let mut total = 0.0;
    let mut counted = 0usize;
    for i in 0..n {
        let li = labels[i];
        if sizes[li] <= 1 {
            // Silhouette of singleton clusters is defined as 0.
            counted += 1;
            continue;
        }
        let mut intra = 0.0;
        let mut inter = vec![0.0f64; k];
        let mut inter_cnt = vec![0usize; k];
        for j in 0..n {
            if i == j {
                continue;
            }
            let d = dist(&rows[i], &rows[j]);
            if labels[j] == li {
                intra += d;
            } else {
                inter[labels[j]] += d;
                inter_cnt[labels[j]] += 1;
            }
        }
        let a = intra / (sizes[li] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != li && inter_cnt[c] > 0)
            .map(|c| inter[c] / inter_cnt[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b);
        }
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contingency_shape() {
        let c = Contingency::new(&[0, 0, 1, 1], &[1, 1, 0, 2]);
        assert_eq!(c.n, 4);
        assert_eq!(c.row_sums, vec![2, 2]);
        assert_eq!(c.col_sums.iter().sum::<usize>(), 4);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn contingency_length_mismatch_panics() {
        Contingency::new(&[0, 1], &[0]);
    }

    #[test]
    fn perfect_agreement() {
        let t = [0, 0, 1, 1, 2, 2];
        assert!((rand_index(&t, &t) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&t, &t) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&t, &t) - 1.0).abs() < 1e-9);
        assert!((adjusted_mutual_information(&t, &t) - 1.0).abs() < 1e-9);
        assert!((purity(&t, &t) - 1.0).abs() < 1e-12);
        assert!((v_measure(&t, &t) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn permuted_labels_still_perfect() {
        let t = [0, 0, 1, 1, 2, 2];
        let p = [2, 2, 0, 0, 1, 1];
        assert!((adjusted_rand_index(&t, &p) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&t, &p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ari_known_value() {
        // Classic example: ARI of this split is 0.24242...
        let t = [0, 0, 0, 1, 1, 1];
        let p = [0, 0, 1, 1, 2, 2];
        let ari = adjusted_rand_index(&t, &p);
        assert!((ari - 0.24242424242424243).abs() < 1e-9, "got {ari}");
        let ri = rand_index(&t, &p);
        assert!((ri - 0.6666666666666666).abs() < 1e-9, "got {ri}");
    }

    #[test]
    fn independent_partitions_near_zero_ari() {
        // Alternating vs block: ARI should be ≤ small.
        let t: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let p: Vec<usize> = (0..40).map(|i| usize::from(i < 20)).collect();
        let ari = adjusted_rand_index(&t, &p);
        assert!(ari.abs() < 0.1, "got {ari}");
    }

    #[test]
    fn single_cluster_each_side() {
        let t = [0, 0, 0];
        let p = [1, 1, 1];
        assert!((adjusted_rand_index(&t, &p) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_information(&t, &p) - 1.0).abs() < 1e-12);
        assert!((adjusted_mutual_information(&t, &p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_labelings() {
        let e: [usize; 0] = [];
        assert_eq!(rand_index(&e, &e), 1.0);
        assert_eq!(adjusted_rand_index(&e, &e), 1.0);
        assert_eq!(mutual_information(&e, &e), 0.0);
        assert_eq!(purity(&e, &e), 1.0);
    }

    #[test]
    fn nmi_bounds_random() {
        let t: Vec<usize> = (0..60).map(|i| i % 3).collect();
        let p: Vec<usize> = (0..60).map(|i| (i / 7) % 4).collect();
        let nmi = normalized_mutual_information(&t, &p);
        assert!((0.0..=1.0).contains(&nmi));
        let ami = adjusted_mutual_information(&t, &p);
        assert!((-1.0..=1.0).contains(&ami));
        assert!(ami <= nmi + 1e-9, "AMI {ami} should not exceed NMI {nmi}");
    }

    #[test]
    fn ami_near_zero_for_random_partitions() {
        // Deterministic pseudo-random labels: a block partition vs labels
        // derived from a multiplicative hash (independent of the blocks).
        let t: Vec<usize> = (0..200).map(|i| i / 50).collect();
        let p: Vec<usize> = (0..200usize)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) % 4)
            .collect();
        let ami = adjusted_mutual_information(&t, &p);
        assert!(ami.abs() < 0.12, "AMI for unrelated partitions was {ami}");
    }

    #[test]
    fn entropy_values() {
        assert_eq!(label_entropy(&[]), 0.0);
        assert_eq!(label_entropy(&[3, 3, 3]), 0.0);
        let h = label_entropy(&[0, 1, 0, 1]);
        assert!((h - (2f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn purity_majority() {
        let t = [0, 0, 0, 1];
        let p = [0, 0, 0, 0];
        assert!((purity(&t, &p) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn homogeneity_vs_completeness_asymmetry() {
        // Splitting a class into two clusters is homogeneous but incomplete.
        let t = [0, 0, 0, 0, 1, 1, 1, 1];
        let p = [0, 0, 1, 1, 2, 2, 3, 3];
        let h = homogeneity(&t, &p);
        let c = completeness(&t, &p);
        assert!((h - 1.0).abs() < 1e-9, "h = {h}");
        assert!(c < 1.0, "c = {c}");
        let v = v_measure(&t, &p);
        assert!(v > 0.0 && v < 1.0);
    }

    #[test]
    fn inertia_of_exact_centroids() {
        let rows = vec![vec![0.0, 0.0], vec![2.0, 0.0], vec![10.0, 0.0]];
        let labels = vec![0, 0, 1];
        let centroids = vec![vec![1.0, 0.0], vec![10.0, 0.0]];
        assert!((inertia(&rows, &labels, &centroids) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn silhouette_separated_blobs() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            rows.push(vec![i as f64 * 0.01, 0.0]);
            labels.push(0);
            rows.push(vec![100.0 + i as f64 * 0.01, 0.0]);
            labels.push(1);
        }
        let s = silhouette(&rows, &labels);
        assert!(s > 0.95, "got {s}");
        // A split orthogonal to the blob structure must score much worse
        // (rows alternate blobs, so halving the index range mixes them).
        let bad: Vec<usize> = (0..20).map(|i| usize::from(i < 10)).collect();
        assert!(silhouette(&rows, &bad) < s);
    }

    #[test]
    fn silhouette_degenerate() {
        assert_eq!(silhouette(&[], &[]), 0.0);
        let rows = vec![vec![0.0], vec![1.0]];
        assert_eq!(silhouette(&rows, &[0, 0]), 0.0);
        // Singletons are defined as 0.
        let s = silhouette(&rows, &[0, 1]);
        assert_eq!(s, 0.0);
    }
}
