//! k-Means (Lloyd's algorithm) with k-means++ initialisation.
//!
//! This is the workhorse of the whole system: k-Graph runs it on every
//! per-length feature matrix, spectral clustering runs it on the embedded
//! eigenvectors, and it doubles as the k-AVG raw baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`KMeans`].
#[derive(Debug, Clone, Copy)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iter: usize,
    /// Number of k-means++ restarts; the best inertia wins.
    pub n_init: usize,
    /// RNG seed (restart r uses `seed + r`).
    pub seed: u64,
}

impl KMeans {
    /// Creates a k-Means configuration with sane defaults
    /// (`max_iter = 100`, `n_init = 5`).
    pub fn new(k: usize, seed: u64) -> Self {
        KMeans {
            k,
            max_iter: 100,
            n_init: 5,
            seed,
        }
    }

    /// Fits on `rows` (points as equal-length vectors).
    ///
    /// Panics if `k == 0` or `rows` is empty or ragged. When `k > n`, the
    /// extra clusters stay empty (labels still cover every point).
    pub fn fit(&self, rows: &[Vec<f64>]) -> KMeansResult {
        assert!(self.k > 0, "k must be > 0");
        assert!(!rows.is_empty(), "k-Means requires at least one point");
        let dim = rows[0].len();
        assert!(rows.iter().all(|r| r.len() == dim), "ragged input rows");

        let mut best: Option<KMeansResult> = None;
        for restart in 0..self.n_init.max(1) {
            let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(restart as u64));
            let result = self.fit_once(rows, &mut rng);
            if best.as_ref().is_none_or(|b| result.inertia < b.inertia) {
                best = Some(result);
            }
        }
        best.expect("at least one restart ran")
    }

    fn fit_once(&self, rows: &[Vec<f64>], rng: &mut StdRng) -> KMeansResult {
        let n = rows.len();
        let k = self.k.min(n);
        let mut centroids = kmeanspp_init(rows, k, rng);
        let mut labels = vec![0usize; n];
        let mut inertia = f64::INFINITY;

        for _ in 0..self.max_iter {
            // Assignment step.
            let mut new_inertia = 0.0;
            for (i, row) in rows.iter().enumerate() {
                let (best_c, best_d) = nearest(row, &centroids);
                labels[i] = best_c;
                new_inertia += best_d;
            }
            // Update step.
            let mut sums = vec![vec![0.0; rows[0].len()]; k];
            let mut counts = vec![0usize; k];
            for (row, &l) in rows.iter().zip(&labels) {
                counts[l] += 1;
                for (s, &x) in sums[l].iter_mut().zip(row) {
                    *s += x;
                }
            }
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at the point farthest from
                    // its centroid to avoid dead centroids.
                    let far = rows
                        .iter()
                        .enumerate()
                        .max_by(|(_, a), (_, b)| {
                            sq_dist(a, &centroids[labels[0]])
                                .partial_cmp(&sq_dist(b, &centroids[labels[0]]))
                                .unwrap()
                        })
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    centroids[c] = rows[far].clone();
                } else {
                    for (j, s) in sums[c].iter().enumerate() {
                        centroids[c][j] = s / counts[c] as f64;
                    }
                }
            }
            if (inertia - new_inertia).abs() < 1e-10 {
                inertia = new_inertia;
                break;
            }
            inertia = new_inertia;
        }
        // Pad empty trailing clusters so `centroids.len() == self.k`.
        while centroids.len() < self.k {
            centroids.push(centroids[0].clone());
        }
        KMeansResult {
            labels,
            centroids,
            inertia,
        }
    }
}

/// Output of a k-Means fit.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster label per input row.
    pub labels: Vec<usize>,
    /// Final centroids (`k` rows).
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
}

impl KMeansResult {
    /// Predicts the cluster of a new point (nearest centroid).
    pub fn predict(&self, row: &[f64]) -> usize {
        nearest(row, &self.centroids).0
    }
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn nearest(row: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = sq_dist(row, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

/// k-means++ seeding: first centre uniform, then proportional to squared
/// distance from the nearest chosen centre.
pub fn kmeanspp_init(rows: &[Vec<f64>], k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let n = rows.len();
    let k = k.min(n);
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(rows[rng.gen_range(0..n)].clone());
    let mut d2: Vec<f64> = rows.iter().map(|r| sq_dist(r, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= f64::MIN_POSITIVE {
            // All points coincide with existing centroids; pick uniformly.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        centroids.push(rows[next].clone());
        let latest = centroids.last().expect("just pushed");
        for (i, row) in rows.iter().enumerate() {
            let d = sq_dist(row, latest);
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::adjusted_rand_index;

    fn three_blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..20 {
                let jitter = (i as f64 % 5.0) * 0.05;
                rows.push(vec![cx + jitter, cy - jitter]);
                truth.push(c);
            }
        }
        (rows, truth)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (rows, truth) = three_blobs();
        let result = KMeans::new(3, 0).fit(&rows);
        assert!((adjusted_rand_index(&truth, &result.labels) - 1.0).abs() < 1e-12);
        assert_eq!(result.centroids.len(), 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let (rows, _) = three_blobs();
        let a = KMeans::new(3, 9).fit(&rows);
        let b = KMeans::new(3, 9).fit(&rows);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let (rows, _) = three_blobs();
        let i1 = KMeans::new(1, 0).fit(&rows).inertia;
        let i2 = KMeans::new(2, 0).fit(&rows).inertia;
        let i3 = KMeans::new(3, 0).fit(&rows).inertia;
        assert!(i1 > i2, "{i1} > {i2}");
        assert!(i2 > i3, "{i2} > {i3}");
        assert!(i3 < 1.0);
    }

    #[test]
    fn k_equals_one() {
        let (rows, _) = three_blobs();
        let r = KMeans::new(1, 0).fit(&rows);
        assert!(r.labels.iter().all(|&l| l == 0));
        // Centroid is the global mean.
        let mean_x: f64 = rows.iter().map(|r| r[0]).sum::<f64>() / rows.len() as f64;
        assert!((r.centroids[0][0] - mean_x).abs() < 1e-9);
    }

    #[test]
    fn k_larger_than_n() {
        let rows = vec![vec![0.0], vec![1.0]];
        let r = KMeans::new(5, 0).fit(&rows);
        assert_eq!(r.labels.len(), 2);
        assert_eq!(r.centroids.len(), 5);
        assert!(r.labels.iter().all(|&l| l < 5));
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn identical_points() {
        let rows = vec![vec![3.0, 3.0]; 10];
        let r = KMeans::new(3, 1).fit(&rows);
        assert!(r.inertia < 1e-12);
        assert_eq!(r.labels.len(), 10);
    }

    #[test]
    fn predict_nearest_centroid() {
        let (rows, _) = three_blobs();
        let r = KMeans::new(3, 0).fit(&rows);
        let near_first_blob = r.predict(&[0.2, 0.1]);
        let same_as_member = r.labels[0];
        assert_eq!(near_first_blob, same_as_member);
    }

    #[test]
    #[should_panic(expected = "k must be > 0")]
    fn zero_k_panics() {
        KMeans::new(0, 0).fit(&[vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn empty_input_panics() {
        KMeans::new(2, 0).fit(&[]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_input_panics() {
        KMeans::new(1, 0).fit(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn kmeanspp_spreads_centroids() {
        let (rows, _) = three_blobs();
        let mut rng = StdRng::seed_from_u64(0);
        let c = kmeanspp_init(&rows, 3, &mut rng);
        assert_eq!(c.len(), 3);
        // The three seeds should land in three different blobs with
        // overwhelming probability given the separation.
        let blob_of = |p: &Vec<f64>| -> usize {
            if p[0] > 5.0 {
                1
            } else if p[1] > 5.0 {
                2
            } else {
                0
            }
        };
        let blobs: std::collections::HashSet<usize> = c.iter().map(blob_of).collect();
        assert_eq!(blobs.len(), 3, "seeds landed in {blobs:?}");
    }

    #[test]
    fn more_restarts_never_hurt() {
        let (rows, _) = three_blobs();
        let few = KMeans {
            k: 3,
            max_iter: 100,
            n_init: 1,
            seed: 5,
        }
        .fit(&rows);
        let many = KMeans {
            k: 3,
            max_iter: 100,
            n_init: 10,
            seed: 5,
        }
        .fit(&rows);
        assert!(many.inertia <= few.inertia + 1e-12);
    }
}
