//! Unified facade over the 14 baseline methods of the Benchmark frame.
//!
//! Each [`MethodKind`] knows how to prepare a [`tscore::Dataset`] (resample
//! to equal length, z-score, project, …) and produce a flat partition, so
//! the benchmark harness can iterate over `MethodKind::all_baselines()`
//! uniformly. k-Graph itself lives in the `kgraph` crate and is added by
//! the harness on top.

use crate::agglo::{Agglomerative, Linkage};
use crate::birch::Birch;
use crate::dbscan::{assign_noise_to_nearest, Dbscan};
use crate::features::{FeatTsLike, Time2FeatLike};
use crate::gmm::Gmm;
use crate::kdba::Kdba;
use crate::kmeans::KMeans;
use crate::ksc::Ksc;
use crate::kshape::KShape;
use crate::meanshift::MeanShift;
use crate::neural::{DenseAe, DtcLike};
use crate::spectral::{rbf_affinity, spectral_clustering, SpectralOptions};
use linalg::matrix::Matrix;
use linalg::pca::Pca;
use tscore::Dataset;

/// The baseline methods of the Benchmark frame (paper: "14 baselines").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// k-Means on raw values (k-AVG in the benchmark literature).
    KMeansRaw,
    /// k-Means on z-normalised values.
    KMeansZnorm,
    /// k-Shape.
    KShape,
    /// k-Spectral-Centroid.
    Ksc,
    /// k-Means under DTW with DBA averaging.
    Kdba,
    /// Spectral clustering with an RBF affinity on raw values.
    SpectralRbf,
    /// Agglomerative clustering, Ward linkage.
    AggloWard,
    /// Agglomerative clustering, complete linkage.
    AggloComplete,
    /// DBSCAN (eps from the distance distribution; noise reassigned).
    Dbscan,
    /// Gaussian mixture (EM) on a PCA projection.
    Gmm,
    /// BIRCH CF-tree + Ward global phase.
    Birch,
    /// Mean-shift on a PCA projection.
    MeanShift,
    /// FeatTS-like feature pipeline.
    FeatTs,
    /// Time2Feat-like feature pipeline.
    Time2Feat,
    /// Dense auto-encoder + k-Means on latent codes (DAE).
    DenseAe,
    /// Auto-encoder + DEC-style refinement (DTC).
    DtcLike,
}

impl MethodKind {
    /// The 14 baselines shown in the Benchmark frame, plus two k-Means
    /// variants folded into one slot each per the paper's grouping.
    pub fn all_baselines() -> Vec<MethodKind> {
        vec![
            MethodKind::KMeansRaw,
            MethodKind::KMeansZnorm,
            MethodKind::KShape,
            MethodKind::Ksc,
            MethodKind::Kdba,
            MethodKind::SpectralRbf,
            MethodKind::AggloWard,
            MethodKind::AggloComplete,
            MethodKind::Dbscan,
            MethodKind::Gmm,
            MethodKind::Birch,
            MethodKind::MeanShift,
            MethodKind::FeatTs,
            MethodKind::Time2Feat,
            MethodKind::DenseAe,
            MethodKind::DtcLike,
        ]
    }

    /// Stable display name (used in tables, CSV and plots).
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::KMeansRaw => "k-Means",
            MethodKind::KMeansZnorm => "k-Means-z",
            MethodKind::KShape => "k-Shape",
            MethodKind::Ksc => "k-SC",
            MethodKind::Kdba => "k-DBA",
            MethodKind::SpectralRbf => "Spectral",
            MethodKind::AggloWard => "Agglo-Ward",
            MethodKind::AggloComplete => "Agglo-Compl",
            MethodKind::Dbscan => "DBSCAN",
            MethodKind::Gmm => "GMM",
            MethodKind::Birch => "BIRCH",
            MethodKind::MeanShift => "MeanShift",
            MethodKind::FeatTs => "FeatTS",
            MethodKind::Time2Feat => "Time2Feat",
            MethodKind::DenseAe => "DAE",
            MethodKind::DtcLike => "DTC",
        }
    }
}

/// A configured clustering method ready to run on datasets.
#[derive(Debug, Clone, Copy)]
pub struct ClusteringMethod {
    /// Which algorithm.
    pub kind: MethodKind,
    /// Number of clusters (ignored by DBSCAN/MeanShift which infer it, but
    /// used by their post-processing fallbacks).
    pub k: usize,
    /// RNG seed threaded into every stochastic component.
    pub seed: u64,
}

impl ClusteringMethod {
    /// Creates a configured method.
    pub fn new(kind: MethodKind, k: usize, seed: u64) -> Self {
        ClusteringMethod { kind, k, seed }
    }

    /// Runs the method on a dataset and returns a full partition
    /// (one label per series, labels in `0..k'`).
    ///
    /// Variable-length datasets are resampled to the minimum length first.
    pub fn run(&self, dataset: &Dataset) -> Vec<usize> {
        assert!(self.k > 0, "k must be > 0");
        assert!(!dataset.is_empty(), "cannot cluster an empty dataset");
        let ds;
        let dataset = if dataset.is_equal_length() {
            dataset
        } else {
            ds = dataset
                .resampled(dataset.min_len().max(2))
                .expect("resampling cannot fail for non-empty series");
            &ds
        };
        let raw = dataset.to_rows();
        let z = dataset.znormed_rows();
        match self.kind {
            MethodKind::KMeansRaw => KMeans::new(self.k, self.seed).fit(&raw).labels,
            MethodKind::KMeansZnorm => KMeans::new(self.k, self.seed).fit(&z).labels,
            MethodKind::KShape => KShape::new(self.k, self.seed).fit(&z).labels,
            MethodKind::Ksc => Ksc::new(self.k, self.seed).fit(&z).labels,
            MethodKind::Kdba => Kdba::new(self.k, self.seed).fit(&z).labels,
            MethodKind::SpectralRbf => {
                let aff = rbf_affinity(&z, None);
                spectral_clustering(&aff, SpectralOptions::new(self.k, self.seed))
            }
            MethodKind::AggloWard => Agglomerative::new(self.k, Linkage::Ward).fit(&z),
            MethodKind::AggloComplete => Agglomerative::new(self.k, Linkage::Complete).fit(&z),
            MethodKind::Dbscan => {
                let eps = dbscan_eps(&z);
                let labels = Dbscan::new(eps, 3).fit(&z);
                assign_noise_to_nearest(&z, &labels)
            }
            MethodKind::Gmm => {
                let proj = pca_project(&z, 8);
                Gmm::new(self.k, self.seed).fit(&proj).labels
            }
            MethodKind::Birch => {
                let proj = pca_project(&z, 8);
                Birch {
                    threshold: birch_threshold(&proj),
                    ..Birch::new(self.k, self.seed)
                }
                .fit(&proj)
            }
            MethodKind::MeanShift => {
                let proj = pca_project(&z, 4);
                MeanShift::default().fit(&proj).0
            }
            MethodKind::FeatTs => FeatTsLike::new(self.k, self.seed).fit(&raw),
            MethodKind::Time2Feat => Time2FeatLike::new(self.k, self.seed).fit(&raw),
            MethodKind::DenseAe => DenseAe {
                epochs: 80,
                ..DenseAe::new(8, self.seed)
            }
            .fit_cluster(&raw, self.k),
            MethodKind::DtcLike => {
                let mut cfg = DtcLike::new(self.k, 8, self.seed);
                cfg.ae.epochs = 80;
                cfg.fit(&raw)
            }
        }
    }
}

/// PCA projection helper: rows → `dims` columns (capped by data rank).
fn pca_project(rows: &[Vec<f64>], dims: usize) -> Vec<Vec<f64>> {
    let m = Matrix::from_rows(rows);
    let (_, proj) = Pca::fit_transform(&m, dims.min(m.cols()).max(1));
    proj.to_rows()
}

/// eps heuristic: 25 % quantile of pairwise distances (excluding zeros).
fn dbscan_eps(rows: &[Vec<f64>]) -> f64 {
    let n = rows.len();
    let mut dists = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            let d: f64 = rows[i]
                .iter()
                .zip(&rows[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            if d > 1e-12 {
                dists.push(d);
            }
        }
    }
    if dists.is_empty() {
        return 1.0;
    }
    dists.sort_by(|a, b| a.partial_cmp(b).expect("NaN distance"));
    dists[dists.len() / 4].max(1e-6)
}

/// BIRCH threshold heuristic: 10 % of the data's RMS radius.
fn birch_threshold(rows: &[Vec<f64>]) -> f64 {
    let n = rows.len();
    if n == 0 {
        return 0.5;
    }
    let d = rows[0].len();
    let mut mean = vec![0.0; d];
    for r in rows {
        for (m, v) in mean.iter_mut().zip(r) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    let rms = (rows
        .iter()
        .map(|r| {
            r.iter()
                .zip(&mean)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
        })
        .sum::<f64>()
        / n as f64)
        .sqrt();
    (rms * 0.1).max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::adjusted_rand_index;
    use tscore::{DatasetKind, TimeSeries};

    /// Easy two-class dataset: sines vs. square waves, slight phase jitter.
    fn easy_dataset() -> Dataset {
        let m = 48;
        let mut series = Vec::new();
        let mut labels = Vec::new();
        for v in 0..8 {
            let phase = v as f64 * 0.05;
            series.push(TimeSeries::new(
                (0..m)
                    .map(|i| (i as f64 * 0.4 + phase).sin() * 2.0)
                    .collect(),
            ));
            labels.push(0);
            series.push(TimeSeries::new(
                (0..m)
                    .map(|i| if (i / 6) % 2 == 0 { 1.5 + phase } else { -1.5 })
                    .collect(),
            ));
            labels.push(1);
        }
        Dataset::with_labels("easy", DatasetKind::Simulated, series, labels).unwrap()
    }

    #[test]
    fn all_baselines_produce_full_partitions() {
        let ds = easy_dataset();
        for kind in MethodKind::all_baselines() {
            let labels = ClusteringMethod::new(kind, 2, 0).run(&ds);
            assert_eq!(labels.len(), ds.len(), "{kind:?} label count");
            assert!(
                labels.iter().all(|&l| l < ds.len()),
                "{kind:?} produced out-of-range label"
            );
        }
    }

    #[test]
    fn strong_methods_solve_the_easy_case() {
        let ds = easy_dataset();
        let truth = ds.labels().unwrap().to_vec();
        for kind in [
            MethodKind::KMeansZnorm,
            MethodKind::KShape,
            MethodKind::SpectralRbf,
            MethodKind::AggloWard,
        ] {
            let labels = ClusteringMethod::new(kind, 2, 0).run(&ds);
            let ari = adjusted_rand_index(&truth, &labels);
            assert!(ari > 0.8, "{kind:?} ARI {ari}");
        }
    }

    #[test]
    fn variable_length_datasets_are_resampled() {
        let series = vec![
            TimeSeries::new((0..40).map(|i| (i as f64 * 0.5).sin()).collect()),
            TimeSeries::new((0..60).map(|i| (i as f64 * 0.5).sin()).collect()),
            TimeSeries::new((0..40).map(|i| if i < 20 { 1.0 } else { -1.0 }).collect()),
            TimeSeries::new((0..50).map(|i| if i < 25 { 1.0 } else { -1.0 }).collect()),
        ];
        let ds = Dataset::with_labels("var", DatasetKind::Other, series, vec![0, 0, 1, 1]).unwrap();
        let labels = ClusteringMethod::new(MethodKind::KMeansZnorm, 2, 0).run(&ds);
        assert_eq!(labels.len(), 4);
    }

    #[test]
    fn method_names_unique() {
        let names: std::collections::HashSet<_> = MethodKind::all_baselines()
            .iter()
            .map(|m| m.name())
            .collect();
        assert_eq!(names.len(), MethodKind::all_baselines().len());
    }

    #[test]
    fn deterministic_across_runs() {
        let ds = easy_dataset();
        for kind in [MethodKind::KMeansRaw, MethodKind::Gmm, MethodKind::FeatTs] {
            let a = ClusteringMethod::new(kind, 2, 7).run(&ds);
            let b = ClusteringMethod::new(kind, 2, 7).run(&ds);
            assert_eq!(a, b, "{kind:?} not deterministic");
        }
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let ds = Dataset::new("e", DatasetKind::Other, vec![]);
        ClusteringMethod::new(MethodKind::KMeansRaw, 2, 0).run(&ds);
    }

    #[test]
    fn baseline_count_matches_paper() {
        // Paper: "k-Graph against 14 baselines" — we expose 16 configured
        // variants covering those 14 families (two k-Means and two agglo
        // variants share families).
        assert!(MethodKind::all_baselines().len() >= 14);
    }
}
