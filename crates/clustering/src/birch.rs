//! BIRCH: Balanced Iterative Reducing and Clustering using Hierarchies.
//!
//! A single-pass CF-tree condenses the data into clustering features
//! (N, LS, SS); the leaf centroids are then clustered globally
//! (agglomerative Ward here, matching scikit-learn's default) and every
//! point inherits the label of its leaf.

use crate::agglo::{Agglomerative, Linkage};

/// A clustering feature: count, linear sum, squared-norm sum.
#[derive(Debug, Clone)]
struct Cf {
    n: f64,
    ls: Vec<f64>,
    ss: f64,
}

impl Cf {
    fn from_point(p: &[f64]) -> Self {
        Cf {
            n: 1.0,
            ls: p.to_vec(),
            ss: p.iter().map(|x| x * x).sum(),
        }
    }

    fn centroid(&self) -> Vec<f64> {
        self.ls.iter().map(|x| x / self.n).collect()
    }

    fn merge(&mut self, other: &Cf) {
        self.n += other.n;
        for (a, b) in self.ls.iter_mut().zip(&other.ls) {
            *a += b;
        }
        self.ss += other.ss;
    }

    /// Radius of the CF after absorbing `other` (RMS distance to centroid).
    fn radius_after_merge(&self, other: &Cf) -> f64 {
        let n = self.n + other.n;
        let ss = self.ss + other.ss;
        let mut ls2 = 0.0;
        for (a, b) in self.ls.iter().zip(&other.ls) {
            let s = a + b;
            ls2 += s * s;
        }
        let r2 = ss / n - ls2 / (n * n);
        r2.max(0.0).sqrt()
    }
}

/// BIRCH configuration.
#[derive(Debug, Clone, Copy)]
pub struct Birch {
    /// Target number of clusters for the global phase.
    pub k: usize,
    /// CF absorption threshold: a point joins a leaf CF only if the merged
    /// radius stays below this.
    pub threshold: f64,
    /// Maximum number of leaf CFs (oldest-first flat list; when exceeded the
    /// threshold is doubled and the tree rebuilt, as in the original paper).
    pub max_leaves: usize,
    /// Seed (kept for interface uniformity; BIRCH itself is deterministic).
    pub seed: u64,
}

impl Birch {
    /// Creates a configuration with `threshold = 0.5`, `max_leaves = 64`.
    pub fn new(k: usize, seed: u64) -> Self {
        Birch {
            k,
            threshold: 0.5,
            max_leaves: 64,
            seed,
        }
    }

    /// Fits BIRCH and returns per-point labels.
    pub fn fit(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        assert!(self.k > 0, "k must be > 0");
        if rows.is_empty() {
            return Vec::new();
        }
        let mut threshold = self.threshold.max(1e-9);
        loop {
            let (leaves, assignment) = build_leaves(rows, threshold, self.max_leaves);
            if leaves.len() > self.max_leaves {
                threshold *= 2.0;
                continue;
            }
            // Global clustering of leaf centroids.
            let centroids: Vec<Vec<f64>> = leaves.iter().map(Cf::centroid).collect();
            let k = self.k.min(centroids.len());
            let leaf_labels = Agglomerative::new(k, Linkage::Ward).fit(&centroids);
            return assignment.iter().map(|&leaf| leaf_labels[leaf]).collect();
        }
    }
}

/// Single pass: absorb each point into the nearest leaf CF if the radius
/// stays under the threshold, otherwise start a new leaf.
fn build_leaves(rows: &[Vec<f64>], threshold: f64, cap: usize) -> (Vec<Cf>, Vec<usize>) {
    let mut leaves: Vec<Cf> = Vec::new();
    let mut assignment = Vec::with_capacity(rows.len());
    for row in rows {
        let point = Cf::from_point(row);
        let mut best: Option<(usize, f64)> = None;
        for (i, leaf) in leaves.iter().enumerate() {
            let c = leaf.centroid();
            let d: f64 = c
                .iter()
                .zip(row)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        match best {
            Some((i, _)) if leaves[i].radius_after_merge(&point) <= threshold => {
                leaves[i].merge(&point);
                assignment.push(i);
            }
            _ => {
                leaves.push(point);
                assignment.push(leaves.len() - 1);
                if leaves.len() > cap {
                    // Signal the caller to retry with a bigger threshold.
                    return (leaves, assignment);
                }
            }
        }
    }
    (leaves, assignment)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::adjusted_rand_index;

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for i in 0..20 {
            let j = (i % 4) as f64 * 0.1;
            rows.push(vec![j, j]);
            truth.push(0);
            rows.push(vec![10.0 + j, 10.0 - j]);
            truth.push(1);
        }
        (rows, truth)
    }

    #[test]
    fn separates_blobs() {
        let (rows, truth) = blobs();
        let labels = Birch::new(2, 0).fit(&rows);
        assert!((adjusted_rand_index(&truth, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tight_threshold_still_works() {
        let (rows, truth) = blobs();
        let labels = Birch {
            threshold: 0.01,
            ..Birch::new(2, 0)
        }
        .fit(&rows);
        assert!((adjusted_rand_index(&truth, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leaf_cap_triggers_threshold_growth() {
        // 50 distinct points with max_leaves = 4 forces rebuilds.
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let labels = Birch {
            max_leaves: 4,
            threshold: 0.1,
            ..Birch::new(2, 0)
        }
        .fit(&rows);
        assert_eq!(labels.len(), 50);
        let k = labels
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len();
        assert!(k <= 2);
    }

    #[test]
    fn k_bounded_by_leaf_count() {
        // Ask for more clusters than leaves can support.
        let rows = vec![vec![0.0], vec![0.01], vec![100.0], vec![100.01]];
        let labels = Birch {
            threshold: 1.0,
            ..Birch::new(10, 0)
        }
        .fit(&rows);
        assert_eq!(labels.len(), 4);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
    }

    #[test]
    fn cf_algebra() {
        let mut cf = Cf::from_point(&[1.0, 2.0]);
        cf.merge(&Cf::from_point(&[3.0, 4.0]));
        assert_eq!(cf.n, 2.0);
        assert_eq!(cf.centroid(), vec![2.0, 3.0]);
        // Radius after absorbing an identical centroid point stays small.
        let same = Cf::from_point(&[2.0, 3.0]);
        assert!(
            cf.radius_after_merge(&same) <= cf.radius_after_merge(&Cf::from_point(&[9.0, 9.0]))
        );
    }

    #[test]
    fn empty_input() {
        assert!(Birch::new(2, 0).fit(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "k must be > 0")]
    fn zero_k_panics() {
        Birch::new(0, 0).fit(&[vec![1.0]]);
    }
}
