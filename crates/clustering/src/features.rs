//! Statistical feature extraction and feature-based clustering pipelines.
//!
//! Implements the "feature-based" family that Graphint's intro discusses:
//!
//! * [`extract_features`] — a catch22-inspired battery of descriptive
//!   statistics per series,
//! * [`FeatTsLike`] — FeatTS-style pipeline: extract features, keep the
//!   most relevant ones (variance ranking + correlation de-duplication),
//!   cluster with k-Means,
//! * [`Time2FeatLike`] — Time2Feat-style pipeline: a wider feature space
//!   (adds spectral descriptors computed via FFT) with the same selection
//!   and clustering backbone.
//!
//! The original FeatTS selects features with ground-truth-seeded PFA;
//! being unsupervised here, selection is variance-driven — the behaviour
//! preserved is "cluster in a compact, discriminative feature space".

use crate::kmeans::KMeans;
use linalg::fft::{next_pow2, rfft};
use tscore::stats;

/// Names of the base feature battery, in output order.
pub const BASE_FEATURE_NAMES: [&str; 14] = [
    "mean",
    "std",
    "skewness",
    "kurtosis",
    "min",
    "max",
    "median",
    "iqr",
    "trend_slope",
    "acf_lag1",
    "acf_lag5",
    "mean_crossings",
    "entropy",
    "rms_diff",
];

/// Extracts the base feature battery from one series.
pub fn extract_features(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return vec![0.0; BASE_FEATURE_NAMES.len()];
    }
    let (min, q1, median, q3, max) = stats::five_number_summary(xs);
    let diffs: Vec<f64> = xs.windows(2).map(|w| w[1] - w[0]).collect();
    let rms_diff = if diffs.is_empty() {
        0.0
    } else {
        (diffs.iter().map(|d| d * d).sum::<f64>() / diffs.len() as f64).sqrt()
    };
    vec![
        stats::mean(xs),
        stats::std(xs),
        stats::skewness(xs),
        stats::kurtosis(xs),
        min,
        max,
        median,
        q3 - q1,
        stats::trend_slope(xs),
        stats::autocorrelation(xs, 1),
        stats::autocorrelation(xs, 5),
        stats::mean_crossings(xs) as f64 / xs.len() as f64,
        stats::histogram_entropy(xs, 16),
        rms_diff,
    ]
}

/// Spectral descriptors via FFT: spectral centroid, spectral spread,
/// dominant-frequency index (normalised), dominant-frequency power ratio,
/// spectral flatness-ish low/high band ratio.
pub fn extract_spectral_features(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    if n < 4 {
        return vec![0.0; 5];
    }
    let size = next_pow2(n);
    let spectrum = rfft(xs, size);
    // Power in the positive-frequency half (skip DC).
    let half = size / 2;
    let power: Vec<f64> = (1..half)
        .map(|i| spectrum[i].re * spectrum[i].re + spectrum[i].im * spectrum[i].im)
        .collect();
    let total: f64 = power.iter().sum();
    if total <= f64::MIN_POSITIVE {
        return vec![0.0; 5];
    }
    let centroid: f64 = power
        .iter()
        .enumerate()
        .map(|(i, p)| (i + 1) as f64 * p)
        .sum::<f64>()
        / total
        / half as f64;
    let spread: f64 = (power
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let f = (i + 1) as f64 / half as f64;
            (f - centroid) * (f - centroid) * p
        })
        .sum::<f64>()
        / total)
        .sqrt();
    let (dom_idx, dom_power) = power
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("NaN power"))
        .map(|(i, &p)| (i, p))
        .unwrap_or((0, 0.0));
    let low: f64 = power.iter().take(power.len() / 4).sum();
    let band_ratio = low / total;
    vec![
        centroid,
        spread,
        (dom_idx + 1) as f64 / half as f64,
        dom_power / total,
        band_ratio,
    ]
}

/// Column-wise z-scores a feature matrix (constant columns become zeros).
pub fn zscore_columns(features: &mut [Vec<f64>]) {
    if features.is_empty() {
        return;
    }
    let d = features[0].len();
    for j in 0..d {
        let col: Vec<f64> = features.iter().map(|r| r[j]).collect();
        let m = stats::mean(&col);
        let s = stats::std(&col);
        for row in features.iter_mut() {
            row[j] = if s > 1e-12 { (row[j] - m) / s } else { 0.0 };
        }
    }
}

/// Selects up to `keep` feature columns.
///
/// Candidates are ranked by the **bimodality coefficient**
/// `b = (skew² + 1) / (excess-kurtosis + 3)` — multimodal columns (the ones
/// that can actually separate clusters) score high, unimodal noise scores
/// low. Degenerate (zero-variance) columns are dropped; a greedy pass then
/// removes any candidate correlating above `max_corr` with an already-kept
/// column. Returns the kept column indices (sorted).
pub fn select_features(features: &[Vec<f64>], keep: usize, max_corr: f64) -> Vec<usize> {
    if features.is_empty() || keep == 0 {
        return Vec::new();
    }
    let d = features[0].len();
    let cols: Vec<Vec<f64>> = (0..d)
        .map(|j| features.iter().map(|r| r[j]).collect())
        .collect();
    let mut order: Vec<usize> = (0..d).collect();
    let variances: Vec<f64> = cols.iter().map(|c| stats::variance(c)).collect();
    let bimodality: Vec<f64> = cols
        .iter()
        .map(|c| {
            let s = stats::skewness(c);
            let k = stats::kurtosis(c) + 3.0;
            (s * s + 1.0) / k.max(1e-9)
        })
        .collect();
    order.sort_by(|&a, &b| {
        bimodality[b]
            .partial_cmp(&bimodality[a])
            .expect("NaN score")
    });
    // b ≥ 0.555… is the uniform-distribution baseline: anything below it is
    // effectively unimodal noise and would only blur the cluster structure.
    const BIMODALITY_FLOOR: f64 = 5.0 / 9.0;
    let mut kept: Vec<usize> = Vec::new();
    for pass in 0..2 {
        for &j in &order {
            if variances[j] <= 1e-12 || kept.contains(&j) {
                continue;
            }
            // First pass admits only bimodal columns; the fallback pass
            // (only reached when nothing qualified) takes the best-ranked
            // remaining ones so the output is never empty.
            if pass == 0 && bimodality[j] < BIMODALITY_FLOOR {
                continue;
            }
            let redundant = kept
                .iter()
                .any(|&k| stats::pearson(&cols[j], &cols[k]).abs() > max_corr);
            if !redundant {
                kept.push(j);
                if kept.len() == keep {
                    break;
                }
            }
        }
        if !kept.is_empty() {
            break;
        }
    }
    if kept.is_empty() {
        // All features degenerate: keep the first column to stay non-empty.
        kept.push(0);
    }
    kept.sort_unstable();
    kept
}

/// FeatTS-like pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct FeatTsLike {
    /// Number of clusters.
    pub k: usize,
    /// Maximum features kept after selection.
    pub max_features: usize,
    /// Seed for the k-Means step.
    pub seed: u64,
}

impl FeatTsLike {
    /// Creates a configuration keeping up to 8 features.
    pub fn new(k: usize, seed: u64) -> Self {
        FeatTsLike {
            k,
            max_features: 8,
            seed,
        }
    }

    /// Runs: base features → z-score → select → k-Means.
    pub fn fit(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        assert!(!rows.is_empty(), "feature pipeline requires input");
        let mut feats: Vec<Vec<f64>> = rows.iter().map(|r| extract_features(r)).collect();
        zscore_columns(&mut feats);
        let kept = select_features(&feats, self.max_features, 0.95);
        let reduced: Vec<Vec<f64>> = feats
            .iter()
            .map(|r| kept.iter().map(|&j| r[j]).collect())
            .collect();
        KMeans::new(self.k, self.seed).fit(&reduced).labels
    }
}

/// Time2Feat-like pipeline configuration (wider feature space).
#[derive(Debug, Clone, Copy)]
pub struct Time2FeatLike {
    /// Number of clusters.
    pub k: usize,
    /// Maximum features kept after selection.
    pub max_features: usize,
    /// Seed for the k-Means step.
    pub seed: u64,
}

impl Time2FeatLike {
    /// Creates a configuration keeping up to 12 features.
    pub fn new(k: usize, seed: u64) -> Self {
        Time2FeatLike {
            k,
            max_features: 12,
            seed,
        }
    }

    /// Runs: base + spectral features → z-score → select → k-Means.
    pub fn fit(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        assert!(!rows.is_empty(), "feature pipeline requires input");
        let mut feats: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| {
                let mut f = extract_features(r);
                f.extend(extract_spectral_features(r));
                f
            })
            .collect();
        zscore_columns(&mut feats);
        let kept = select_features(&feats, self.max_features, 0.95);
        let reduced: Vec<Vec<f64>> = feats
            .iter()
            .map(|r| kept.iter().map(|&j| r[j]).collect())
            .collect();
        KMeans::new(self.k, self.seed).fit(&reduced).labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::adjusted_rand_index;

    #[test]
    fn feature_vector_shape() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        let f = extract_features(&xs);
        assert_eq!(f.len(), BASE_FEATURE_NAMES.len());
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn empty_series_features_are_zero() {
        let f = extract_features(&[]);
        assert!(f.iter().all(|&x| x == 0.0));
        assert_eq!(extract_spectral_features(&[1.0, 2.0]), vec![0.0; 5]);
    }

    #[test]
    fn spectral_features_detect_frequency() {
        let slow: Vec<f64> = (0..128).map(|i| (i as f64 * 0.1).sin()).collect();
        let fast: Vec<f64> = (0..128).map(|i| (i as f64 * 1.5).sin()).collect();
        let fs = extract_spectral_features(&slow);
        let ff = extract_spectral_features(&fast);
        assert!(
            ff[2] > fs[2],
            "dominant frequency should be higher: {} vs {}",
            ff[2],
            fs[2]
        );
        assert!(
            fs[4] > ff[4],
            "low-band ratio should favour the slow signal"
        );
    }

    #[test]
    fn spectral_features_flat_signal() {
        let f = extract_spectral_features(&[2.0; 64]);
        assert!(f.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn zscore_makes_columns_standard() {
        let mut feats = vec![vec![1.0, 100.0], vec![2.0, 200.0], vec![3.0, 300.0]];
        zscore_columns(&mut feats);
        for j in 0..2 {
            let col: Vec<f64> = feats.iter().map(|r| r[j]).collect();
            assert!(stats::mean(&col).abs() < 1e-12);
            assert!((stats::std(&col) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zscore_constant_column_zeroed() {
        let mut feats = vec![vec![5.0], vec![5.0]];
        zscore_columns(&mut feats);
        assert_eq!(feats, vec![vec![0.0], vec![0.0]]);
    }

    #[test]
    fn selection_drops_duplicates() {
        // col1 duplicates col0; col2 is constant; col3 independent.
        let feats: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let x = i as f64;
                vec![x, 2.0 * x, 7.0, (x * 1.7).sin() * 10.0]
            })
            .collect();
        let kept = select_features(&feats, 4, 0.95);
        assert!(!kept.contains(&2), "constant column must go, kept {kept:?}");
        assert!(
            !(kept.contains(&0) && kept.contains(&1)),
            "correlated pair must be deduplicated, kept {kept:?}"
        );
        assert!(kept.contains(&3));
    }

    #[test]
    fn selection_keep_budget() {
        let feats: Vec<Vec<f64>> = (0..10)
            .map(|i| (0..6).map(|j| ((i * (j + 1)) as f64 * 0.7).sin()).collect())
            .collect();
        let kept = select_features(&feats, 3, 0.99);
        assert!(kept.len() <= 3);
        assert!(!kept.is_empty());
    }

    #[test]
    fn selection_all_degenerate() {
        let feats = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let kept = select_features(&feats, 2, 0.9);
        assert_eq!(kept, vec![0]);
    }

    fn noisy_vs_trending() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for v in 0..12 {
            // Class 0: oscillating, no trend.
            rows.push(
                (0..64)
                    .map(|i| ((i + v) as f64 * 0.9).sin() * 2.0)
                    .collect(),
            );
            truth.push(0);
            // Class 1: strong upward trend, mild noise.
            rows.push(
                (0..64)
                    .map(|i| i as f64 * 0.3 + ((i * v) as f64 * 0.1).sin() * 0.2)
                    .collect(),
            );
            truth.push(1);
        }
        (rows, truth)
    }

    #[test]
    fn featts_like_separates_by_features() {
        let (rows, truth) = noisy_vs_trending();
        let labels = FeatTsLike::new(2, 0).fit(&rows);
        let ari = adjusted_rand_index(&truth, &labels);
        assert!(ari > 0.8, "ARI {ari}");
    }

    #[test]
    fn time2feat_like_separates_by_features() {
        let (rows, truth) = noisy_vs_trending();
        let labels = Time2FeatLike::new(2, 0).fit(&rows);
        let ari = adjusted_rand_index(&truth, &labels);
        assert!(ari > 0.8, "ARI {ari}");
    }

    #[test]
    fn pipelines_deterministic() {
        let (rows, _) = noisy_vs_trending();
        assert_eq!(
            FeatTsLike::new(2, 4).fit(&rows),
            FeatTsLike::new(2, 4).fit(&rows)
        );
        assert_eq!(
            Time2FeatLike::new(2, 4).fit(&rows),
            Time2FeatLike::new(2, 4).fit(&rows)
        );
    }
}
