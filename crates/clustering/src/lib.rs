//! # clustering — time series clustering algorithms and quality metrics
//!
//! Implements, from scratch, every clustering method Graphint's Benchmark
//! frame compares k-Graph against, plus the external/internal quality
//! metrics used across the system:
//!
//! | module | method / content |
//! |---|---|
//! | [`kmeans`]    | k-Means with k-means++ init and restarts (k-AVG) |
//! | [`kshape`]    | k-Shape (FFT-backed NCC, SBD, shape extraction) |
//! | [`ksc`]       | k-Spectral-Centroid (scale/shift invariant) |
//! | [`kdba`]      | k-Means under DTW with DBA barycenter averaging |
//! | [`spectral`]  | spectral clustering on RBF / k-NN / precomputed affinities |
//! | [`agglo`]     | agglomerative clustering (single/complete/average/Ward) |
//! | [`dbscan`]    | density-based clustering |
//! | [`gmm`]       | Gaussian mixture model (diagonal covariance EM) |
//! | [`birch`]     | BIRCH CF-tree with global clustering refinement |
//! | [`meanshift`] | mean-shift with a Gaussian kernel |
//! | [`features`]  | statistical feature extraction + FeatTS/Time2Feat-like pipelines |
//! | [`neural`]    | MLP auto-encoder (DenseAE) and DEC-style refinement (DTC-like) |
//! | [`metrics`]   | RI, ARI, NMI, AMI, purity, homogeneity/completeness/V, silhouette |
//! | [`validation`]| Calinski–Harabasz, Davies–Bouldin, automatic k selection |
//! | [`method`]    | unified [`method::ClusteringMethod`] registry for the benchmark harness |
//!
//! All algorithms are deterministic given a seed, and operate on either raw
//! rows (`Vec<Vec<f64>>`) or [`tscore::Dataset`]s via the `method` facade.

pub mod agglo;
pub mod birch;
pub mod dbscan;
pub mod features;
pub mod gmm;
pub mod kdba;
pub mod kmeans;
pub mod ksc;
pub mod kshape;
pub mod meanshift;
pub mod method;
pub mod metrics;
pub mod neural;
pub mod spectral;
pub mod validation;

pub use kmeans::{KMeans, KMeansResult};
pub use kshape::{sbd_fft, KShape};
pub use method::{ClusteringMethod, MethodKind};
pub use metrics::{adjusted_rand_index, normalized_mutual_information, rand_index};
pub use spectral::{spectral_clustering, SpectralOptions};
