//! Agglomerative (hierarchical) clustering with Lance–Williams updates.
//!
//! Supports single, complete, average and Ward linkage; the dendrogram is
//! cut at `k` clusters. O(n³) naive merging — fine for the benchmark's
//! dataset sizes (≤ a few hundred series).

/// Linkage criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum inter-cluster distance.
    Single,
    /// Maximum inter-cluster distance.
    Complete,
    /// Unweighted average inter-cluster distance (UPGMA).
    Average,
    /// Ward's minimum-variance criterion (requires squared Euclidean input).
    Ward,
}

/// Agglomerative clustering configuration.
#[derive(Debug, Clone, Copy)]
pub struct Agglomerative {
    /// Target number of clusters.
    pub k: usize,
    /// Linkage criterion.
    pub linkage: Linkage,
}

impl Agglomerative {
    /// Creates a configuration.
    pub fn new(k: usize, linkage: Linkage) -> Self {
        Agglomerative { k, linkage }
    }

    /// Clusters rows under Euclidean distance (Ward uses squared distances
    /// internally, per the standard Lance–Williams formulation).
    pub fn fit(&self, rows: &[Vec<f64>]) -> Vec<usize> {
        assert!(self.k > 0, "k must be > 0");
        let n = rows.len();
        if n == 0 {
            return Vec::new();
        }
        let squared = self.linkage == Linkage::Ward;
        let mut dist = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d2: f64 = rows[i]
                    .iter()
                    .zip(&rows[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                let d = if squared { d2 } else { d2.sqrt() };
                dist[i][j] = d;
                dist[j][i] = d;
            }
        }
        self.fit_precomputed_internal(dist, n)
    }

    /// Clusters from a precomputed symmetric distance matrix.
    ///
    /// For Ward linkage the matrix must contain *squared* distances.
    pub fn fit_precomputed(&self, dist: &[Vec<f64>]) -> Vec<usize> {
        assert!(self.k > 0, "k must be > 0");
        let n = dist.len();
        if n == 0 {
            return Vec::new();
        }
        assert!(
            dist.iter().all(|r| r.len() == n),
            "distance matrix must be square"
        );
        self.fit_precomputed_internal(dist.to_vec(), n)
    }

    fn fit_precomputed_internal(&self, mut dist: Vec<Vec<f64>>, n: usize) -> Vec<usize> {
        // active[i]: cluster i still exists; size[i]: #points inside.
        let mut active: Vec<bool> = vec![true; n];
        let mut size: Vec<f64> = vec![1.0; n];
        // membership[i] = current cluster id of point i (ids are merged into
        // the lower index).
        let mut membership: Vec<usize> = (0..n).collect();
        let mut remaining = n;
        let target = self.k.min(n);

        while remaining > target {
            // Find the closest active pair.
            let mut best = (0usize, 0usize);
            let mut best_d = f64::INFINITY;
            for i in 0..n {
                if !active[i] {
                    continue;
                }
                for j in (i + 1)..n {
                    if !active[j] {
                        continue;
                    }
                    if dist[i][j] < best_d {
                        best_d = dist[i][j];
                        best = (i, j);
                    }
                }
            }
            let (a, b) = best;
            // Lance–Williams update of distances from the merged cluster
            // (a ∪ b) to every other active cluster c.
            for c in 0..n {
                if !active[c] || c == a || c == b {
                    continue;
                }
                let dac = dist[a][c];
                let dbc = dist[b][c];
                let dab = dist[a][b];
                let new_d = match self.linkage {
                    Linkage::Single => dac.min(dbc),
                    Linkage::Complete => dac.max(dbc),
                    Linkage::Average => (size[a] * dac + size[b] * dbc) / (size[a] + size[b]),
                    Linkage::Ward => {
                        let s = size[a] + size[b] + size[c];
                        ((size[a] + size[c]) * dac + (size[b] + size[c]) * dbc - size[c] * dab) / s
                    }
                };
                dist[a][c] = new_d;
                dist[c][a] = new_d;
            }
            active[b] = false;
            size[a] += size[b];
            for m in membership.iter_mut() {
                if *m == b {
                    *m = a;
                }
            }
            remaining -= 1;
        }

        // Compact cluster ids to 0..k.
        let mut id_map = std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(n);
        for &m in &membership {
            let next = id_map.len();
            let id = *id_map.entry(m).or_insert(next);
            labels.push(id);
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::adjusted_rand_index;

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for i in 0..10 {
            rows.push(vec![(i % 3) as f64 * 0.1, (i % 2) as f64 * 0.1]);
            truth.push(0);
            rows.push(vec![20.0 + (i % 3) as f64 * 0.1, (i % 2) as f64 * 0.1]);
            truth.push(1);
        }
        (rows, truth)
    }

    #[test]
    fn all_linkages_recover_blobs() {
        let (rows, truth) = blobs();
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let labels = Agglomerative::new(2, linkage).fit(&rows);
            let ari = adjusted_rand_index(&truth, &labels);
            assert!((ari - 1.0).abs() < 1e-12, "{linkage:?} ARI {ari}");
        }
    }

    #[test]
    fn single_linkage_chains() {
        // A chain of close points plus one far blob: single linkage glues
        // the chain into one cluster.
        let mut rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 1.0]).collect();
        rows.push(vec![100.0]);
        rows.push(vec![100.5]);
        let labels = Agglomerative::new(2, Linkage::Single).fit(&rows);
        assert_eq!(labels[0], labels[9], "chain should stay connected");
        assert_ne!(labels[0], labels[10]);
    }

    #[test]
    fn k_equals_n_all_singletons() {
        let rows = vec![vec![0.0], vec![1.0], vec![2.0]];
        let labels = Agglomerative::new(3, Linkage::Average).fit(&rows);
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), 3);
    }

    #[test]
    fn k_one_single_cluster() {
        let (rows, _) = blobs();
        let labels = Agglomerative::new(1, Linkage::Ward).fit(&rows);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn precomputed_matches_euclidean() {
        let (rows, _) = blobs();
        let n = rows.len();
        let mut dist = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                dist[i][j] = rows[i]
                    .iter()
                    .zip(&rows[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
            }
        }
        let direct = Agglomerative::new(2, Linkage::Complete).fit(&rows);
        let precomp = Agglomerative::new(2, Linkage::Complete).fit_precomputed(&dist);
        assert_eq!(direct, precomp);
    }

    #[test]
    fn empty_input() {
        let labels = Agglomerative::new(2, Linkage::Ward).fit(&[]);
        assert!(labels.is_empty());
    }

    #[test]
    #[should_panic(expected = "k must be > 0")]
    fn zero_k_panics() {
        Agglomerative::new(0, Linkage::Single).fit(&[vec![1.0]]);
    }

    #[test]
    fn labels_are_compact() {
        let (rows, _) = blobs();
        let labels = Agglomerative::new(2, Linkage::Ward).fit(&rows);
        let max = *labels.iter().max().unwrap();
        assert!(max < 2);
        assert!(labels.contains(&0) && labels.contains(&1));
    }
}
