//! Mean-shift clustering with a Gaussian kernel.
//!
//! Every point hill-climbs the kernel density estimate; converged modes
//! within one bandwidth are merged into clusters. Like the GMM baseline,
//! the benchmark harness feeds PCA-reduced rows (mean-shift in hundreds of
//! dimensions is meaningless); the implementation is dimension-agnostic.

/// Mean-shift configuration.
#[derive(Debug, Clone, Copy)]
pub struct MeanShift {
    /// Kernel bandwidth; `None` estimates it as the mean pairwise distance
    /// times 0.5 (a pragmatic default that works on z-scored projections).
    pub bandwidth: Option<f64>,
    /// Maximum hill-climbing iterations per point.
    pub max_iter: usize,
    /// Convergence tolerance on the shift step.
    pub tol: f64,
}

impl Default for MeanShift {
    fn default() -> Self {
        MeanShift {
            bandwidth: None,
            max_iter: 100,
            tol: 1e-5,
        }
    }
}

impl MeanShift {
    /// Creates a configuration with an explicit bandwidth.
    pub fn with_bandwidth(bandwidth: f64) -> Self {
        MeanShift {
            bandwidth: Some(bandwidth),
            ..Default::default()
        }
    }

    /// Runs mean-shift; returns (labels, modes).
    pub fn fit(&self, rows: &[Vec<f64>]) -> (Vec<usize>, Vec<Vec<f64>>) {
        let n = rows.len();
        if n == 0 {
            return (Vec::new(), Vec::new());
        }
        let bw = self
            .bandwidth
            .unwrap_or_else(|| estimate_bandwidth(rows))
            .max(1e-9);
        let inv2bw2 = 1.0 / (2.0 * bw * bw);

        // Hill-climb every point.
        let mut modes: Vec<Vec<f64>> = Vec::with_capacity(n);
        for start in rows {
            let mut x = start.clone();
            for _ in 0..self.max_iter {
                let mut num = vec![0.0; x.len()];
                let mut den = 0.0;
                for row in rows {
                    let d2: f64 = x.iter().zip(row).map(|(a, b)| (a - b) * (a - b)).sum();
                    let w = (-d2 * inv2bw2).exp();
                    den += w;
                    for (s, &v) in num.iter_mut().zip(row) {
                        *s += w * v;
                    }
                }
                if den <= f64::MIN_POSITIVE {
                    break;
                }
                let next: Vec<f64> = num.iter().map(|s| s / den).collect();
                let step: f64 = next
                    .iter()
                    .zip(&x)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                x = next;
                if step < self.tol {
                    break;
                }
            }
            modes.push(x);
        }

        // Merge modes within one bandwidth into clusters.
        let mut centers: Vec<Vec<f64>> = Vec::new();
        let mut labels = vec![0usize; n];
        for (i, mode) in modes.iter().enumerate() {
            let mut found = None;
            for (c, center) in centers.iter().enumerate() {
                let d: f64 = mode
                    .iter()
                    .zip(center)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                if d < bw {
                    found = Some(c);
                    break;
                }
            }
            match found {
                Some(c) => labels[i] = c,
                None => {
                    centers.push(mode.clone());
                    labels[i] = centers.len() - 1;
                }
            }
        }
        (labels, centers)
    }
}

/// Mean pairwise Euclidean distance × 0.5 (cheap bandwidth heuristic).
pub fn estimate_bandwidth(rows: &[Vec<f64>]) -> f64 {
    let n = rows.len();
    if n < 2 {
        return 1.0;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += rows[i]
                .iter()
                .zip(&rows[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            count += 1;
        }
    }
    let mean = total / count as f64;
    (mean * 0.5).max(1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::adjusted_rand_index;

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for i in 0..15 {
            let j = (i % 5) as f64 * 0.15;
            rows.push(vec![j, -j]);
            truth.push(0);
            rows.push(vec![12.0 + j, 12.0 - j]);
            truth.push(1);
        }
        (rows, truth)
    }

    #[test]
    fn finds_two_modes() {
        let (rows, truth) = blobs();
        let (labels, centers) = MeanShift::with_bandwidth(2.0).fit(&rows);
        assert_eq!(centers.len(), 2, "expected 2 modes, got {}", centers.len());
        assert!((adjusted_rand_index(&truth, &labels) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auto_bandwidth_reasonable() {
        let (rows, truth) = blobs();
        let (labels, _) = MeanShift::default().fit(&rows);
        let ari = adjusted_rand_index(&truth, &labels);
        assert!(ari > 0.9, "ARI {ari}");
    }

    #[test]
    fn giant_bandwidth_single_cluster() {
        let (rows, _) = blobs();
        let (labels, centers) = MeanShift::with_bandwidth(1e6).fit(&rows);
        assert_eq!(centers.len(), 1);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn modes_near_blob_centres() {
        let (rows, _) = blobs();
        let (_, centers) = MeanShift::with_bandwidth(2.0).fit(&rows);
        let mut xs: Vec<f64> = centers.iter().map(|c| c[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((xs[0] - 0.3).abs() < 1.0, "first mode x {xs:?}");
        assert!((xs[1] - 12.3).abs() < 1.0, "second mode x {xs:?}");
    }

    #[test]
    fn empty_input() {
        let (labels, centers) = MeanShift::default().fit(&[]);
        assert!(labels.is_empty());
        assert!(centers.is_empty());
    }

    #[test]
    fn single_point() {
        let (labels, centers) = MeanShift::default().fit(&[vec![3.0, 4.0]]);
        assert_eq!(labels, vec![0]);
        assert_eq!(centers.len(), 1);
    }

    #[test]
    fn bandwidth_estimate_positive() {
        let (rows, _) = blobs();
        assert!(estimate_bandwidth(&rows) > 0.0);
        assert_eq!(estimate_bandwidth(&[vec![1.0]]), 1.0);
    }
}
