//! Property-based tests for the clustering algorithms: structural
//! invariants that must hold for *any* input, not just the curated
//! fixtures of the unit tests.

use clustering::agglo::{Agglomerative, Linkage};
use clustering::kmeans::KMeans;
use clustering::metrics;
use proptest::prelude::*;

/// Random small point cloud: n points in d dimensions.
fn cloud(n_range: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f64>>> {
    n_range.prop_flat_map(|n| {
        proptest::collection::vec(proptest::collection::vec(-10.0..10.0f64, 3..=3), n..=n)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kmeans_labels_in_range_and_inertia_consistent(rows in cloud(3..20), k in 1usize..5) {
        let result = KMeans::new(k, 7).fit(&rows);
        prop_assert_eq!(result.labels.len(), rows.len());
        prop_assert!(result.labels.iter().all(|&l| l < k.max(1)));
        // Reported inertia matches a recomputation from labels+centroids.
        let recomputed = metrics::inertia(&rows, &result.labels, &result.centroids);
        prop_assert!((result.inertia - recomputed).abs() < 1e-6 * (1.0 + recomputed));
    }

    #[test]
    fn kmeans_assignments_are_nearest_centroid(rows in cloud(4..16)) {
        let result = KMeans::new(2, 3).fit(&rows);
        for (row, &l) in rows.iter().zip(&result.labels) {
            let d = |c: &Vec<f64>| -> f64 {
                c.iter().zip(row).map(|(a, b)| (a - b) * (a - b)).sum()
            };
            let mine = d(&result.centroids[l]);
            for c in &result.centroids {
                prop_assert!(mine <= d(c) + 1e-9);
            }
        }
    }

    #[test]
    fn agglomerative_produces_exactly_k_compact_labels(rows in cloud(4..16), k in 1usize..5) {
        let k = k.min(rows.len());
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average, Linkage::Ward] {
            let labels = Agglomerative::new(k, linkage).fit(&rows);
            prop_assert_eq!(labels.len(), rows.len());
            let distinct: std::collections::HashSet<_> = labels.iter().collect();
            prop_assert_eq!(distinct.len(), k, "{:?}", linkage);
            // Compact: labels are 0..k.
            prop_assert!(labels.iter().all(|&l| l < k));
        }
    }

    #[test]
    fn dbscan_labels_partition_or_noise(rows in cloud(3..15), eps in 0.5..10.0f64) {
        let labels = clustering::dbscan::Dbscan::new(eps, 2).fit(&rows);
        prop_assert_eq!(labels.len(), rows.len());
        let fixed = clustering::dbscan::assign_noise_to_nearest(&rows, &labels);
        prop_assert!(fixed.iter().all(|&l| l != clustering::dbscan::NOISE));
    }

    #[test]
    fn gmm_weights_sum_to_one(rows in cloud(4..16), k in 1usize..4) {
        let result = clustering::gmm::Gmm::new(k, 1).fit(&rows);
        let sum: f64 = result.weights.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "weights sum {sum}");
        prop_assert!(result.log_likelihood.is_finite());
        prop_assert!(result.variances.iter().flatten().all(|&v| v > 0.0));
    }

    #[test]
    fn birch_covers_every_point(rows in cloud(3..20), k in 1usize..4) {
        let labels = clustering::birch::Birch::new(k, 0).fit(&rows);
        prop_assert_eq!(labels.len(), rows.len());
        prop_assert!(labels.iter().all(|&l| l < k));
    }

    #[test]
    fn feature_extraction_always_finite(xs in proptest::collection::vec(-100.0..100.0f64, 0..80)) {
        let f = clustering::features::extract_features(&xs);
        prop_assert_eq!(f.len(), clustering::features::BASE_FEATURE_NAMES.len());
        prop_assert!(f.iter().all(|v| v.is_finite()));
        let s = clustering::features::extract_spectral_features(&xs);
        prop_assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn sbd_fft_triangle_like_bound(
        a in proptest::collection::vec(-5.0..5.0f64, 8..=8),
    ) {
        // SBD(a, a) == 0 and SBD never negative (within fp noise).
        prop_assume!(a.iter().map(|v| v * v).sum::<f64>() > 1e-9);
        let d = clustering::kshape::sbd_fft(&a, &a);
        prop_assert!(d.abs() < 1e-9, "self distance {d}");
    }

    #[test]
    fn spectral_on_random_affinity_is_total(n in 2usize..10, k in 1usize..4) {
        // Symmetric random-ish affinity built deterministically from n.
        let aff = linalg::Matrix::from_fn(n, n, |i, j| {
            if i == j {
                1.0
            } else {
                let h = ((i * 31 + j * 17) % 10) as f64 / 10.0;
                let h2 = ((j * 31 + i * 17) % 10) as f64 / 10.0;
                (h + h2) / 2.0
            }
        });
        let labels = clustering::spectral::spectral_clustering(
            &aff,
            clustering::spectral::SpectralOptions::new(k.min(n), 0),
        );
        prop_assert_eq!(labels.len(), n);
        prop_assert!(labels.iter().all(|&l| l < k.min(n).max(1)));
    }
}
