//! Criterion benches for the design-choice ablations listed in DESIGN.md:
//! radial resolution ψ, KDE mode threshold, node-only vs node+edge
//! features — measuring the *cost* side (the accuracy side is covered by
//! `tests/ablation.rs`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kgraph::{KGraph, KGraphConfig};

fn config(psi: usize, node_f: bool, edge_f: bool) -> KGraphConfig {
    KGraphConfig {
        n_lengths: 3,
        psi,
        pca_sample: 600,
        n_init: 2,
        node_features: node_f,
        edge_features: edge_f,
        ..KGraphConfig::new(3)
    }
}

fn bench_ablation(c: &mut Criterion) {
    let dataset = datasets::cbf::cbf(6, 96, 0);
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for psi in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("psi", psi), &psi, |b, &psi| {
            let kg = KGraph::new(config(psi, true, true));
            b.iter(|| kg.fit(black_box(&dataset)))
        });
    }
    for (name, nf, ef) in [
        ("node+edge", true, true),
        ("node_only", true, false),
        ("edge_only", false, true),
    ] {
        group.bench_with_input(BenchmarkId::new("features", name), &name, |b, _| {
            let kg = KGraph::new(config(16, nf, ef));
            b.iter(|| kg.fit(black_box(&dataset)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
