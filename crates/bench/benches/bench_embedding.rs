//! Criterion benches for stage 1 of the pipeline: subsequence projection
//! (PCA) and node extraction (radial scan + KDE), per subsequence length,
//! plus the stride ablation called out in DESIGN.md.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kgraph::embed::project_subsequences;
use kgraph::nodes::radial_scan;

fn bench_embedding(c: &mut Criterion) {
    let dataset = datasets::cbf::cbf(10, 128, 0);
    let mut group = c.benchmark_group("embedding");
    for length in [16usize, 32, 64] {
        group.bench_with_input(BenchmarkId::new("project", length), &length, |b, &l| {
            b.iter(|| project_subsequences(black_box(&dataset), l, 1, 1000))
        });
        let proj = project_subsequences(&dataset, length, 1, 1000);
        group.bench_with_input(BenchmarkId::new("radial_scan", length), &length, |b, _| {
            b.iter(|| radial_scan(black_box(&proj), 20, 128, 0.05))
        });
    }
    // Stride ablation: how much does strided extraction save?
    for stride in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("project_stride", stride),
            &stride,
            |b, &s| b.iter(|| project_subsequences(black_box(&dataset), 32, s, 1000)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_embedding
}
criterion_main!(benches);
