//! Criterion benches for stage 3: consensus-matrix construction and the
//! spectral vs k-Means consensus ablation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kgraph::consensus::{consensus_labels, consensus_labels_kmeans, consensus_matrix};

fn make_partitions(n: usize, m: usize) -> Vec<Vec<usize>> {
    (0..m)
        .map(|p| (0..n).map(|i| (i / 10 + p) % 3).collect())
        .collect()
}

fn bench_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("consensus");
    for n in [60usize, 120, 240] {
        let partitions = make_partitions(n, 5);
        group.bench_with_input(BenchmarkId::new("matrix", n), &n, |b, _| {
            b.iter(|| consensus_matrix(black_box(&partitions)))
        });
        let mc = consensus_matrix(&partitions);
        group.bench_with_input(BenchmarkId::new("spectral", n), &n, |b, _| {
            b.iter(|| consensus_labels(black_box(&mc), 3, 0))
        });
        group.bench_with_input(BenchmarkId::new("kmeans", n), &n, |b, _| {
            b.iter(|| consensus_labels_kmeans(black_box(&mc), 3, 0))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_consensus
}
criterion_main!(benches);
