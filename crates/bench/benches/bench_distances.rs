//! Criterion micro-benches for the distance substrate: Euclidean vs SBD
//! (direct and FFT) vs DTW (banded and full). Supports the E6 narrative:
//! why k-Graph avoids pairwise elastic distances entirely.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn make_pair(len: usize) -> (Vec<f64>, Vec<f64>) {
    let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.13).sin()).collect();
    let b: Vec<f64> = (0..len).map(|i| (i as f64 * 0.13 + 0.7).sin()).collect();
    (a, b)
}

fn bench_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("distances");
    for len in [64usize, 256] {
        let (a, b) = make_pair(len);
        group.bench_with_input(BenchmarkId::new("euclidean", len), &len, |bencher, _| {
            bencher.iter(|| tscore::distance::euclidean(black_box(&a), black_box(&b)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sbd_direct", len), &len, |bencher, _| {
            bencher.iter(|| tscore::distance::sbd(black_box(&a), black_box(&b)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sbd_fft", len), &len, |bencher, _| {
            bencher.iter(|| clustering::kshape::sbd_fft(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("dtw_banded", len), &len, |bencher, _| {
            let opts = tscore::dtw::DtwOptions {
                window: Some(len / 10),
            };
            bencher.iter(|| tscore::dtw::dtw(black_box(&a), black_box(&b), opts).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dtw_full", len), &len, |bencher, _| {
            let opts = tscore::dtw::DtwOptions::default();
            bencher.iter(|| tscore::dtw::dtw(black_box(&a), black_box(&b), opts).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_distances
}
criterion_main!(benches);
