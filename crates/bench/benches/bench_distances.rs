//! Criterion micro-benches for the distance substrate: Euclidean vs SBD
//! (direct and FFT) vs DTW (banded and full). Supports the E6 narrative:
//! why k-Graph avoids pairwise elastic distances entirely.
//!
//! The `kernels` group pits every fused lane-chunked kernel
//! (`tscore::kernel`) against its scalar reference implementation
//! (`tscore::kernel::reference`) at ℓ = 256 and 1024 — the acceptance
//! numbers for the SIMD-friendly rewrite (≥1.5x on z-normalised Euclidean,
//! ≥1.3x on banded DTW) come from these labels.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tscore::dtw::{DtwOptions, DtwScratch};
use tscore::kernel;

fn make_pair(len: usize) -> (Vec<f64>, Vec<f64>) {
    let a: Vec<f64> = (0..len).map(|i| (i as f64 * 0.13).sin()).collect();
    let b: Vec<f64> = (0..len).map(|i| (i as f64 * 0.13 + 0.7).sin()).collect();
    (a, b)
}

fn bench_distances(c: &mut Criterion) {
    let mut group = c.benchmark_group("distances");
    for len in [64usize, 256] {
        let (a, b) = make_pair(len);
        group.bench_with_input(BenchmarkId::new("euclidean", len), &len, |bencher, _| {
            bencher.iter(|| tscore::distance::euclidean(black_box(&a), black_box(&b)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sbd_direct", len), &len, |bencher, _| {
            bencher.iter(|| tscore::distance::sbd(black_box(&a), black_box(&b)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sbd_fft", len), &len, |bencher, _| {
            bencher.iter(|| clustering::kshape::sbd_fft(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("dtw_banded", len), &len, |bencher, _| {
            let opts = DtwOptions {
                window: Some(len / 10),
            };
            bencher.iter(|| tscore::dtw::dtw(black_box(&a), black_box(&b), opts).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("dtw_full", len), &len, |bencher, _| {
            let opts = DtwOptions::default();
            bencher.iter(|| tscore::dtw::dtw(black_box(&a), black_box(&b), opts).unwrap())
        });
    }
    group.finish();
}

/// Fused kernels vs their scalar references, at the acceptance lengths.
fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    group.sample_size(30);
    for len in [256usize, 1024] {
        let (a, b) = make_pair(len);

        group.bench_with_input(
            BenchmarkId::new("znorm_ed_scalar", len),
            &len,
            |bencher, _| {
                bencher.iter(|| kernel::reference::znorm_euclidean(black_box(&a), black_box(&b)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("znorm_ed_kernel", len),
            &len,
            |bencher, _| {
                bencher.iter(|| kernel::znorm_euclidean(black_box(&a), black_box(&b)).unwrap())
            },
        );

        let opts = DtwOptions {
            window: Some(len / 10),
        };
        group.bench_with_input(
            BenchmarkId::new("dtw_banded_scalar", len),
            &len,
            |bencher, _| {
                bencher.iter(|| kernel::reference::dtw(black_box(&a), black_box(&b), opts))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dtw_banded_kernel", len),
            &len,
            |bencher, _| {
                let mut scratch = DtwScratch::new();
                bencher
                    .iter(|| kernel::dtw(black_box(&a), black_box(&b), opts, &mut scratch).unwrap())
            },
        );

        group.bench_with_input(BenchmarkId::new("sbd_scalar", len), &len, |bencher, _| {
            bencher.iter(|| kernel::reference::sbd(black_box(&a), black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("sbd_kernel", len), &len, |bencher, _| {
            bencher.iter(|| kernel::sbd(black_box(&a), black_box(&b)).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_distances, bench_kernels
}
criterion_main!(benches);
