//! Criterion benches for the end-to-end pipeline: full fit vs dataset
//! size/length, and the parallel vs serial per-length jobs ablation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kgraph::{KGraph, KGraphConfig};

fn quick_config(k: usize, parallel: bool) -> KGraphConfig {
    KGraphConfig {
        n_lengths: 3,
        psi: 16,
        pca_sample: 600,
        n_init: 2,
        parallel,
        ..KGraphConfig::new(k)
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for per_class in [5usize, 10] {
        let dataset = datasets::cbf::cbf(per_class, 96, 0);
        group.bench_with_input(
            BenchmarkId::new("fit_n_series", per_class * 3),
            &per_class,
            |b, _| {
                let kg = KGraph::new(quick_config(3, true));
                b.iter(|| kg.fit(black_box(&dataset)))
            },
        );
    }
    for length in [64usize, 128] {
        let dataset = datasets::cbf::cbf(6, length, 0);
        group.bench_with_input(BenchmarkId::new("fit_length", length), &length, |b, _| {
            let kg = KGraph::new(quick_config(3, true));
            b.iter(|| kg.fit(black_box(&dataset)))
        });
    }
    // Parallel vs serial jobs.
    let dataset = datasets::cbf::cbf(8, 96, 0);
    for (name, parallel) in [("parallel", true), ("serial", false)] {
        group.bench_with_input(BenchmarkId::new("jobs", name), &parallel, |b, &p| {
            let kg = KGraph::new(quick_config(3, p));
            b.iter(|| kg.fit(black_box(&dataset)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
