//! Stage-attributed criterion benches for the end-to-end pipeline.
//!
//! Every label is `pipeline/<stage>/<variant>` with `<stage>` one of
//! `build` / `fit` / `features` / `cluster` / `render` (see
//! `bench::stages`). The committed `crates/bench/BENCH_pipeline.json` is
//! the recorded baseline; CI reruns this bench and gates merges with
//! `bench_compare` on per-stage geomean ratios. Scaling variants (series
//! count, length, parallel vs serial jobs) all live under the `fit` stage.

use bench::stages::{ScaleFixture, StageFixture};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kgraph::{KGraph, KGraphConfig};

fn quick_config(k: usize, parallel: bool) -> KGraphConfig {
    KGraphConfig {
        n_lengths: 3,
        psi: 16,
        pca_sample: 600,
        n_init: 2,
        parallel,
        ..KGraphConfig::new(k)
    }
}

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    let fx = StageFixture::standard();

    group.bench_function(BenchmarkId::new("build", format!("l{}", fx.length)), |b| {
        b.iter(|| fx.run_build())
    });
    group.bench_function(BenchmarkId::new("fit", "full"), |b| b.iter(|| fx.run_fit()));

    // The downstream stages reuse one built layer / fitted model so their
    // timings isolate the stage itself.
    let layer = fx.run_build();
    group.bench_function(BenchmarkId::new("features", "matrix"), |b| {
        b.iter(|| fx.run_features(black_box(&layer)))
    });
    group.bench_function(BenchmarkId::new("cluster", "kmeans"), |b| {
        b.iter(|| fx.run_cluster(black_box(&layer)))
    });
    let model = fx.run_fit();
    group.bench_function(BenchmarkId::new("render", "graph"), |b| {
        b.iter(|| fx.run_render(black_box(&model)))
    });
    group.finish();
}

fn bench_render_at_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    // Each iteration lays out and emits a 10k-node layer; a few samples
    // are enough for a stable median under the shim's outlier rejection.
    group.sample_size(3);
    let fx = ScaleFixture::standard_10k();
    // Barnes–Hut layout cost over the full 10k-node graph.
    group.bench_function(BenchmarkId::new("render", "bh_10k"), |b| {
        b.iter(|| black_box(&fx).run_render_bh())
    });
    // Level-of-detail emission under a tight element budget.
    group.bench_function(BenchmarkId::new("render", "lod_10k"), |b| {
        b.iter(|| black_box(&fx).run_render_lod())
    });
    group.finish();
}

fn bench_fit_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for per_class in [5usize, 10] {
        let dataset = datasets::cbf::cbf(per_class, 96, 0);
        group.bench_with_input(
            BenchmarkId::new("fit", format!("n_series_{}", per_class * 3)),
            &per_class,
            |b, _| {
                let kg = KGraph::new(quick_config(3, true));
                b.iter(|| kg.fit(black_box(&dataset)))
            },
        );
    }
    for length in [64usize, 128] {
        let dataset = datasets::cbf::cbf(6, length, 0);
        group.bench_with_input(
            BenchmarkId::new("fit", format!("length_{length}")),
            &length,
            |b, _| {
                let kg = KGraph::new(quick_config(3, true));
                b.iter(|| kg.fit(black_box(&dataset)))
            },
        );
    }
    // Parallel vs serial jobs.
    let dataset = datasets::cbf::cbf(8, 96, 0);
    for (name, parallel) in [("parallel", true), ("serial", false)] {
        group.bench_with_input(
            BenchmarkId::new("fit", format!("jobs_{name}")),
            &parallel,
            |b, &p| {
                let kg = KGraph::new(quick_config(3, p));
                b.iter(|| kg.fit(black_box(&dataset)))
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_stages,
    bench_fit_scaling,
    bench_render_at_scale
);
criterion_main!(benches);
