//! Criterion benches for stage 2: feature-matrix construction and the
//! per-length k-Means (node-only vs node+edge feature ablation).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use kgraph::build::build_graph;
use kgraph::embed::project_subsequences;
use kgraph::features::{cluster_layer, feature_matrix};
use kgraph::nodes::radial_scan;

fn bench_stage2(c: &mut Criterion) {
    let dataset = datasets::cbf::cbf(10, 128, 0);
    let proj = project_subsequences(&dataset, 32, 1, 1000);
    let assign = radial_scan(&proj, 20, 128, 0.05);
    let layer = build_graph(&dataset, &proj, &assign);

    let mut group = c.benchmark_group("graph_clustering");
    group.bench_function("feature_matrix", |b| {
        b.iter(|| feature_matrix(black_box(&layer), true, true))
    });
    group.bench_function("feature_matrix_nodes_only", |b| {
        b.iter(|| feature_matrix(black_box(&layer), true, false))
    });
    group.bench_function("kmeans_on_features", |b| {
        b.iter(|| cluster_layer(black_box(&layer), 3, 3, 0, true, true))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stage2
}
criterion_main!(benches);
