//! Criterion benches comparing k-Graph's runtime against representative
//! baselines on the same dataset (the cost side of the Benchmark frame).

use bench::experiment_kgraph_config;
use clustering::method::{ClusteringMethod, MethodKind};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kgraph::KGraph;

fn bench_baselines(c: &mut Criterion) {
    let dataset = datasets::cbf::cbf(8, 96, 0);
    let k = 3;
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);
    group.bench_function("k-Graph", |b| {
        let kg = KGraph::new(experiment_kgraph_config(k, 0));
        b.iter(|| kg.fit(black_box(&dataset)))
    });
    for kind in [
        MethodKind::KMeansZnorm,
        MethodKind::KShape,
        MethodKind::SpectralRbf,
        MethodKind::AggloWard,
        MethodKind::FeatTs,
        MethodKind::Kdba,
    ] {
        group.bench_with_input(
            BenchmarkId::new("baseline", kind.name()),
            &kind,
            |b, &kind| {
                let m = ClusteringMethod::new(kind, k, 0);
                b.iter(|| m.run(black_box(&dataset)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
