//! Graph-core benches: CSR builder vs. the old DiGraph probing path.
//!
//! The workload mirrors what `build_graph_with_stride` produces at scale —
//! a transition stream over a ≥10k-node vocabulary with a skewed (hub-
//! heavy) degree distribution, the regime where the old per-edge
//! `edge_between` probe (O(deg) scan per transition) collapses and the
//! sort+aggregate builder stays linear. Three comparisons:
//!
//! * `build/*` — constructing the weighted graph from the raw stream,
//! * `lookup/*` — point edge lookups (linear scan vs. binary search),
//! * `pagerank/*` — traversal (arena indirection vs. contiguous slices),
//! * `stream/*` — the streaming-maintenance path: bounded-memory spill
//!   build, batched delta ingest, and base+delta compaction.
//!
//! Timings are persisted as `BENCH_graph.json` (see the criterion shim's
//! `write_baseline`), so the perf trajectory has a committed baseline.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use tsgraph::algo;
use tsgraph::layout::{self, BarnesHutOptions, ForceOptions};
use tsgraph::{CsrGraph, DeltaGraph, DeltaView, DiGraph, GraphBuilder, NodeId, SpillBuilder};

const NODES: usize = 12_000;
const TRANSITIONS: usize = 400_000;

/// Deterministic skewed transition stream: hubs (low ids) are visited
/// often, like dense pattern nodes in a k-Graph layer.
fn transition_stream(nodes: usize, transitions: usize) -> Vec<(u32, u32)> {
    let mut s = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s
    };
    let mut out = Vec::with_capacity(transitions);
    let mut cur = 0u32;
    for _ in 0..transitions {
        let r = next();
        // ~1/3 of steps jump to a hub (first 0.5%), the rest take a wide
        // local step — hubs end up with out-degrees in the hundreds, the
        // regime where per-transition adjacency scans collapse.
        let dst = if r % 3 == 0 {
            (next() % (nodes as u64 / 200).max(1)) as u32
        } else {
            ((cur as u64 + 1 + next() % 512) % nodes as u64) as u32
        };
        if dst != cur {
            out.push((cur, dst));
        }
        cur = dst;
    }
    out
}

/// The pre-refactor construction path: probe `edge_between` per
/// transition, bump the weight or insert a fresh edge.
fn build_digraph_probing(nodes: usize, stream: &[(u32, u32)]) -> DiGraph<(), f64> {
    let mut g: DiGraph<(), f64> = DiGraph::with_capacity(nodes, stream.len() / 8);
    for _ in 0..nodes {
        g.add_node(());
    }
    for &(s, t) in stream {
        let (a, b) = (NodeId(s), NodeId(t));
        match g.edge_between(a, b) {
            Some(e) => *g.edge_mut(e) += 1.0,
            None => {
                g.add_edge(a, b, 1.0);
            }
        }
    }
    g
}

/// The post-refactor path: emit triples, sort + aggregate.
fn build_csr(nodes: usize, stream: &[(u32, u32)]) -> CsrGraph<(), f64> {
    let mut b = GraphBuilder::with_capacity(stream.len());
    for &(s, t) in stream {
        b.add_edge(NodeId(s), NodeId(t), 1.0);
    }
    b.build(vec![(); nodes], |acc, w| *acc += w)
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    group.sample_size(10);
    let stream = transition_stream(NODES, TRANSITIONS);
    group.bench_with_input(
        BenchmarkId::new("digraph_probing", TRANSITIONS),
        &stream,
        |b, stream| b.iter(|| build_digraph_probing(NODES, black_box(stream))),
    );
    group.bench_with_input(
        BenchmarkId::new("csr_builder", TRANSITIONS),
        &stream,
        |b, stream| b.iter(|| build_csr(NODES, black_box(stream))),
    );
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("lookup");
    group.sample_size(20);
    let stream = transition_stream(NODES, TRANSITIONS);
    let di = build_digraph_probing(NODES, &stream);
    let csr = build_csr(NODES, &stream);
    // Query the observed transitions (mostly hits) — the feature-matrix
    // and graphoid access pattern.
    let queries: Vec<(NodeId, NodeId)> = stream
        .iter()
        .step_by(16)
        .map(|&(s, t)| (NodeId(s), NodeId(t)))
        .collect();
    group.bench_with_input(
        BenchmarkId::new("digraph_edge_between", queries.len()),
        &queries,
        |b, queries| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(s, t) in queries.iter() {
                    hits += di.edge_between(s, t).is_some() as usize;
                }
                black_box(hits)
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("csr_edge_id", queries.len()),
        &queries,
        |b, queries| {
            b.iter(|| {
                let mut hits = 0usize;
                for &(s, t) in queries.iter() {
                    hits += csr.edge_id(s, t).is_some() as usize;
                }
                black_box(hits)
            })
        },
    );
    group.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let mut group = c.benchmark_group("pagerank");
    group.sample_size(10);
    let stream = transition_stream(NODES, TRANSITIONS);
    let di = build_digraph_probing(NODES, &stream);
    let csr = build_csr(NODES, &stream);
    group.bench_with_input(
        BenchmarkId::new("digraph_reference", NODES),
        &di,
        |b, di| b.iter(|| algo::reference::pagerank(black_box(di), 0.85, 20, |&w| w)),
    );
    group.bench_with_input(BenchmarkId::new("csr_native", NODES), &csr, |b, csr| {
        b.iter(|| algo::pagerank(black_box(csr), 0.85, 20, |&w| w))
    });
    group.finish();
}

fn bench_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("stream");
    group.sample_size(10);
    let stream = transition_stream(NODES, TRANSITIONS);
    // Base CSR over the first half of the stream; the second half arrives
    // "live" as delta batches.
    let (head, tail) = stream.split_at(stream.len() / 2);
    let base = build_csr(NODES, head);

    // Bounded-memory build: the whole stream through the spill/merge path
    // with a budget far below the stream length (forces several runs).
    group.bench_with_input(
        BenchmarkId::new("spill_build", TRANSITIONS),
        &stream,
        |b, stream| {
            b.iter(|| {
                let mut sb = SpillBuilder::new(64 * 1024).expect("spill dir");
                for &(s, t) in stream.iter() {
                    sb.add_edge(NodeId(s), NodeId(t), 1.0).expect("add_edge");
                }
                sb.build(vec![(); NODES], |acc, w| *acc += w)
                    .expect("spill build")
            })
        },
    );

    // Incremental maintenance: fold the live half into a DeltaGraph in
    // refresh-sized batches (sort + 2-way merge per batch).
    group.bench_with_input(
        BenchmarkId::new("delta_ingest", tail.len()),
        &tail,
        |b, tail| {
            b.iter(|| {
                let mut delta = DeltaGraph::new(NODES);
                for chunk in tail.chunks(4096) {
                    delta.ingest(
                        chunk.iter().map(|&(s, t)| (NodeId(s), NodeId(t), 1.0)),
                        |acc, w| *acc += w,
                    );
                }
                black_box(delta.edge_count())
            })
        },
    );

    // Compaction: merge the accumulated delta into a fresh base CSR.
    let mut delta = DeltaGraph::new(NODES);
    delta.ingest(
        tail.iter().map(|&(s, t)| (NodeId(s), NodeId(t), 1.0)),
        |acc, w| *acc += w,
    );
    group.bench_with_input(
        BenchmarkId::new("compact", delta.edge_count()),
        &(&base, &delta),
        |b, (base, delta)| b.iter(|| DeltaView::new(base, delta).compact(|acc, w| *acc += w)),
    );
    group.finish();
}

fn bench_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("layout");
    // The exact reference is O(n²) per iteration — at 50k nodes a single
    // iteration is ~1.25e9 pair interactions, so both sides run only two
    // force iterations and two samples. The comparison is the point: the
    // acceptance bar is Barnes–Hut ≥ 10x faster at θ = 0.8.
    group.sample_size(2);
    const LAYOUT_NODES: usize = 50_000;
    let stream = transition_stream(LAYOUT_NODES, 200_000);
    let g = build_csr(LAYOUT_NODES, &stream);
    let force = ForceOptions {
        iterations: 2,
        area: 1000.0,
        seed: 42,
    };
    group.bench_with_input(
        BenchmarkId::new("reference_50k", LAYOUT_NODES),
        &g,
        |b, g| b.iter(|| layout::reference::force_directed(black_box(g), force)),
    );
    group.bench_with_input(
        BenchmarkId::new("barnes_hut_theta08_50k", LAYOUT_NODES),
        &g,
        |b, g| b.iter(|| layout::barnes_hut(black_box(g), BarnesHutOptions { force, theta: 0.8 })),
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_build, bench_lookup, bench_pagerank, bench_stream, bench_layout
}
criterion_main!(benches);
