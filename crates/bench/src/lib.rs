//! Shared experiment harness for the E0–E5 binaries and the criterion
//! benches.
//!
//! The central entry point is [`run_benchmark`], which evaluates k-Graph
//! plus every baseline of the Benchmark frame over a dataset collection and
//! yields the [`BenchmarkRecord`]s the frame consumes. Experiment binaries
//! print ASCII tables and write SVG/HTML + CSV artefacts under `out/`.

pub mod baseline;
pub mod stages;

use clustering::method::{ClusteringMethod, MethodKind};
use clustering::metrics::{
    adjusted_mutual_information, adjusted_rand_index, normalized_mutual_information, rand_index,
};
use datasets::DatasetSpec;
use graphint::frames::benchmark::BenchmarkRecord;
use kgraph::{KGraph, KGraphConfig};
use std::path::PathBuf;
use std::time::Instant;
use tscore::Dataset;

/// Name used for k-Graph rows in benchmark tables.
pub const KGRAPH_NAME: &str = "k-Graph";

/// Directory all experiment artefacts are written to.
pub fn out_dir() -> PathBuf {
    let dir = std::env::var("GRAPHINT_OUT").unwrap_or_else(|_| "out".to_string());
    PathBuf::from(dir)
}

/// A moderately fast k-Graph configuration used across experiments
/// (4 lengths, ψ = 20 — close to the canonical config but bounded for
/// laptop-scale runs).
pub fn experiment_kgraph_config(k: usize, seed: u64) -> KGraphConfig {
    KGraphConfig {
        n_lengths: 4,
        psi: 20,
        pca_sample: 1200,
        n_init: 4,
        ..KGraphConfig::new(k).with_seed(seed)
    }
}

/// Evaluates one partition against ground truth on all four measures.
pub fn evaluate(dataset: &Dataset, method: &str, labels: &[usize]) -> BenchmarkRecord {
    let truth = dataset.labels().expect("benchmark datasets are labelled");
    BenchmarkRecord {
        dataset: dataset.name().to_string(),
        kind: dataset.kind(),
        length: dataset.min_len(),
        n_series: dataset.len(),
        n_classes: dataset.n_classes(),
        method: method.to_string(),
        ari: adjusted_rand_index(truth, labels),
        ri: rand_index(truth, labels),
        nmi: normalized_mutual_information(truth, labels),
        ami: adjusted_mutual_information(truth, labels),
    }
}

/// Which baselines to run (all 16 configured variants by default; the
/// quick mode used by tests keeps the fast ones).
pub fn baseline_set(quick: bool) -> Vec<MethodKind> {
    if quick {
        vec![
            MethodKind::KMeansZnorm,
            MethodKind::KShape,
            MethodKind::SpectralRbf,
            MethodKind::AggloWard,
            MethodKind::FeatTs,
        ]
    } else {
        MethodKind::all_baselines()
    }
}

/// Runs k-Graph + baselines over a dataset collection.
///
/// Returns all records plus per-run timing lines (method, dataset,
/// seconds) for the scalability summary. `quick` trims the baseline set
/// and is what the smoke tests use.
pub fn run_benchmark(
    specs: &[DatasetSpec],
    seed: u64,
    quick: bool,
    verbose: bool,
) -> (Vec<BenchmarkRecord>, Vec<(String, String, f64)>) {
    let mut records = Vec::new();
    let mut timings = Vec::new();
    for spec in specs {
        let dataset = (spec.build)();
        let k = dataset.n_classes().max(2);

        // k-Graph itself.
        let t0 = Instant::now();
        let model = KGraph::new(experiment_kgraph_config(k, seed)).fit(&dataset);
        let secs = t0.elapsed().as_secs_f64();
        timings.push((KGRAPH_NAME.to_string(), spec.name.to_string(), secs));
        records.push(evaluate(&dataset, KGRAPH_NAME, &model.labels));
        if verbose {
            println!(
                "  {:<18} {:<18} ARI {:+.3}  ({secs:.2}s)",
                spec.name,
                KGRAPH_NAME,
                records.last().expect("just pushed").ari
            );
        }

        // Baselines.
        for kind in baseline_set(quick) {
            let t0 = Instant::now();
            let labels = ClusteringMethod::new(kind, k, seed).run(&dataset);
            let secs = t0.elapsed().as_secs_f64();
            timings.push((kind.name().to_string(), spec.name.to_string(), secs));
            records.push(evaluate(&dataset, kind.name(), &labels));
            if verbose {
                println!(
                    "  {:<18} {:<18} ARI {:+.3}  ({secs:.2}s)",
                    spec.name,
                    kind.name(),
                    records.last().expect("just pushed").ari
                );
            }
        }
    }
    (records, timings)
}

/// Serialises benchmark records to CSV rows (header first).
pub fn records_to_csv(records: &[BenchmarkRecord]) -> Vec<Vec<String>> {
    let mut rows = vec![vec![
        "dataset".to_string(),
        "kind".to_string(),
        "length".to_string(),
        "n_series".to_string(),
        "n_classes".to_string(),
        "method".to_string(),
        "ari".to_string(),
        "ri".to_string(),
        "nmi".to_string(),
        "ami".to_string(),
    ]];
    for r in records {
        rows.push(vec![
            r.dataset.clone(),
            r.kind.as_str().to_string(),
            r.length.to_string(),
            r.n_series.to_string(),
            r.n_classes.to_string(),
            r.method.clone(),
            format!("{:.4}", r.ari),
            format!("{:.4}", r.ri),
            format!("{:.4}", r.nmi),
            format!("{:.4}", r.ami),
        ]);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasets::quick_collection;

    #[test]
    fn quick_benchmark_produces_records() {
        let specs = quick_collection();
        let (records, timings) = run_benchmark(&specs[..1], 0, true, false);
        // k-Graph + 5 quick baselines on one dataset.
        assert_eq!(records.len(), 6);
        assert_eq!(timings.len(), 6);
        assert!(records.iter().any(|r| r.method == KGRAPH_NAME));
        for r in &records {
            assert!((-1.0..=1.0).contains(&r.ari), "{} ari {}", r.method, r.ari);
            assert!((0.0..=1.0).contains(&r.ri));
            assert!((0.0..=1.0).contains(&r.nmi));
        }
    }

    #[test]
    fn csv_rows_match_records() {
        let specs = quick_collection();
        let (records, _) = run_benchmark(&specs[..1], 0, true, false);
        let rows = records_to_csv(&records);
        assert_eq!(rows.len(), records.len() + 1);
        assert_eq!(rows[0][0], "dataset");
        assert_eq!(rows[1].len(), 10);
    }

    #[test]
    fn full_baseline_set_covers_fourteen() {
        assert!(baseline_set(false).len() >= 14);
        assert!(baseline_set(true).len() < baseline_set(false).len());
    }
}
