//! Stage-attributed pipeline fixture for the regression-gated benches.
//!
//! The end-to-end k-Graph pipeline decomposes into five stages —
//! **build** (subsequence embedding + radial scan + graph construction),
//! **fit** (the full multi-length model), **features** (path → feature
//! matrix), **cluster** (k-Means over the features) and **render** (the
//! Graph frame's node-link view). `bench_pipeline` times each stage under
//! a label of the form `pipeline/<stage>/<variant>`, and
//! [`crate::baseline`] aggregates ratios per `<stage>` — so a regression
//! report says *which stage* got slower, not just that the pipeline did.
//!
//! Everything here is deterministic (fixed dataset seed, fixed config) so
//! two runs on the same machine measure the same work.

use graphint::frames::graph::GraphFrame;
use kgraph::build::GraphLayer;
use kgraph::embed::project_subsequences;
use kgraph::features::{cluster_layer, feature_matrix};
use kgraph::nodes::radial_scan;
use kgraph::{KGraph, KGraphConfig, KGraphModel};
use tscore::Dataset;

/// The five stage names, in pipeline order. These are the `<stage>` path
/// segments of every `pipeline/<stage>/<variant>` bench label and the keys
/// the comparison gate aggregates by.
pub const STAGE_NAMES: [&str; 5] = ["build", "fit", "features", "cluster", "render"];

/// Deterministic workload shared by every stage bench.
pub struct StageFixture {
    /// The dataset every stage operates on (CBF, fixed seed).
    pub dataset: Dataset,
    /// Subsequence length ℓ used for the single-layer stages.
    pub length: usize,
    /// The pipeline configuration used by the fit stage (also supplies
    /// ψ, stride, KDE grid and PCA sample size to the single-layer stages).
    pub config: KGraphConfig,
}

impl StageFixture {
    /// The standard fixture: 18 CBF series of length 96, a 3-length
    /// pipeline bounded like the quick experiment configs.
    pub fn standard() -> Self {
        let dataset = datasets::cbf::cbf(6, 96, 0);
        let config = KGraphConfig {
            n_lengths: 3,
            psi: 16,
            pca_sample: 600,
            n_init: 2,
            parallel: true,
            ..KGraphConfig::new(3)
        };
        StageFixture {
            dataset,
            length: 24,
            config,
        }
    }

    /// Stage `build`: embedding + radial scan + graph for one length.
    pub fn run_build(&self) -> GraphLayer {
        let cfg = &self.config;
        let proj = project_subsequences(&self.dataset, self.length, cfg.stride, cfg.pca_sample);
        let assign = radial_scan(&proj, cfg.psi, cfg.kde_grid, cfg.min_density_ratio);
        kgraph::build::build_graph_with_stride(&self.dataset, &proj, &assign, cfg.stride)
    }

    /// Stage `fit`: the full multi-length model.
    pub fn run_fit(&self) -> KGraphModel {
        KGraph::new(self.config.clone()).fit(&self.dataset)
    }

    /// Stage `features`: the per-series feature matrix of a built layer.
    pub fn run_features(&self, layer: &GraphLayer) -> Vec<Vec<f64>> {
        feature_matrix(layer, self.config.node_features, self.config.edge_features)
    }

    /// Stage `cluster`: k-Means over a layer's features.
    pub fn run_cluster(&self, layer: &GraphLayer) -> Vec<usize> {
        let cfg = &self.config;
        cluster_layer(
            layer,
            cfg.k,
            cfg.n_init,
            cfg.seed,
            cfg.node_features,
            cfg.edge_features,
        )
    }

    /// Stage `render`: the Graph frame's ASCII/ANSI node-link view.
    pub fn run_render(&self, model: &KGraphModel) -> String {
        GraphFrame::with_auto_thresholds(model).render_graph()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_compose_end_to_end() {
        let fx = StageFixture::standard();
        let layer = fx.run_build();
        assert!(layer.graph.node_count() > 0);
        assert_eq!(layer.paths.len(), fx.dataset.len());

        let features = fx.run_features(&layer);
        assert_eq!(features.len(), fx.dataset.len());

        let labels = fx.run_cluster(&layer);
        assert_eq!(labels.len(), fx.dataset.len());
        assert!(labels.iter().all(|&l| l < fx.config.k));

        let model = fx.run_fit();
        assert_eq!(model.labels.len(), fx.dataset.len());
        let svg = fx.run_render(&model);
        assert!(!svg.is_empty());
    }

    #[test]
    fn fixture_is_deterministic() {
        let a = StageFixture::standard().run_fit();
        let b = StageFixture::standard().run_fit();
        assert_eq!(a.labels, b.labels);
    }
}
