//! Stage-attributed pipeline fixture for the regression-gated benches.
//!
//! The end-to-end k-Graph pipeline decomposes into five stages —
//! **build** (subsequence embedding + radial scan + graph construction),
//! **fit** (the full multi-length model), **features** (path → feature
//! matrix), **cluster** (k-Means over the features) and **render** (the
//! Graph frame's node-link view). `bench_pipeline` times each stage under
//! a label of the form `pipeline/<stage>/<variant>`, and
//! [`crate::baseline`] aggregates ratios per `<stage>` — so a regression
//! report says *which stage* got slower, not just that the pipeline did.
//!
//! Everything here is deterministic (fixed dataset seed, fixed config) so
//! two runs on the same machine measure the same work.

use graphint::frames::graph::GraphFrame;
use graphint::plot::{DetailLevel, GraphPlot, RenderBudget};
use kgraph::build::GraphLayer;
use kgraph::embed::project_subsequences;
use kgraph::features::{cluster_layer, feature_matrix};
use kgraph::graphoid::ClusterStats;
use kgraph::nodes::radial_scan;
use kgraph::{KGraph, KGraphConfig, KGraphModel, NodePattern, PatternGraph};
use tscore::Dataset;
use tsgraph::layout::LayoutEngine;
use tsgraph::{GraphBuilder, NodeId};

/// The five stage names, in pipeline order. These are the `<stage>` path
/// segments of every `pipeline/<stage>/<variant>` bench label and the keys
/// the comparison gate aggregates by.
pub const STAGE_NAMES: [&str; 5] = ["build", "fit", "features", "cluster", "render"];

/// Deterministic workload shared by every stage bench.
pub struct StageFixture {
    /// The dataset every stage operates on (CBF, fixed seed).
    pub dataset: Dataset,
    /// Subsequence length ℓ used for the single-layer stages.
    pub length: usize,
    /// The pipeline configuration used by the fit stage (also supplies
    /// ψ, stride, KDE grid and PCA sample size to the single-layer stages).
    pub config: KGraphConfig,
}

impl StageFixture {
    /// The standard fixture: 18 CBF series of length 96, a 3-length
    /// pipeline bounded like the quick experiment configs.
    pub fn standard() -> Self {
        let dataset = datasets::cbf::cbf(6, 96, 0);
        let config = KGraphConfig {
            n_lengths: 3,
            psi: 16,
            pca_sample: 600,
            n_init: 2,
            parallel: true,
            ..KGraphConfig::new(3)
        };
        StageFixture {
            dataset,
            length: 24,
            config,
        }
    }

    /// Stage `build`: embedding + radial scan + graph for one length.
    pub fn run_build(&self) -> GraphLayer {
        let cfg = &self.config;
        let proj = project_subsequences(&self.dataset, self.length, cfg.stride, cfg.pca_sample);
        let assign = radial_scan(&proj, cfg.psi, cfg.kde_grid, cfg.min_density_ratio);
        kgraph::build::build_graph_with_stride(&self.dataset, &proj, &assign, cfg.stride)
    }

    /// Stage `fit`: the full multi-length model.
    pub fn run_fit(&self) -> KGraphModel {
        KGraph::new(self.config.clone()).fit(&self.dataset)
    }

    /// Stage `features`: the per-series feature matrix of a built layer.
    pub fn run_features(&self, layer: &GraphLayer) -> Vec<Vec<f64>> {
        feature_matrix(layer, self.config.node_features, self.config.edge_features)
    }

    /// Stage `cluster`: k-Means over a layer's features.
    pub fn run_cluster(&self, layer: &GraphLayer) -> Vec<usize> {
        let cfg = &self.config;
        cluster_layer(
            layer,
            cfg.k,
            cfg.n_init,
            cfg.seed,
            cfg.node_features,
            cfg.edge_features,
        )
    }

    /// Stage `render`: the Graph frame's ASCII/ANSI node-link view.
    pub fn run_render(&self, model: &KGraphModel) -> String {
        GraphFrame::with_auto_thresholds(model).render_graph()
    }
}

/// At-scale render fixture: a 10k-node synthetic layer (graph + crossing
/// statistics built directly, no fit) for the `pipeline/render/bh_10k`
/// and `pipeline/render/lod_10k` variants. Construction is deterministic
/// — an LCG stream, no RNG dependency — so two runs measure identical
/// work.
pub struct ScaleFixture {
    /// The synthetic pattern graph.
    pub graph: PatternGraph,
    /// Crossing statistics giving most nodes a clear owner.
    pub stats: ClusterStats,
}

impl ScaleFixture {
    /// The standard at-scale fixture: 10k nodes in 6 cluster blocks, a
    /// chain through each block plus 2 pseudo-random extra edges per node
    /// (~30k edges).
    pub fn standard_10k() -> Self {
        let (n, k, extra, seed) = (10_000usize, 6usize, 2usize, 7u64);
        let cluster = |i: usize| i * k / n;
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let mut b = GraphBuilder::new();
        for i in 0..n {
            if i + 1 < n && cluster(i) == cluster(i + 1) {
                b.add_edge(NodeId(i as u32), NodeId(i as u32 + 1), 1.0 + (i % 5) as f64);
            }
            for _ in 0..extra {
                let t = next() % n;
                if t != i {
                    b.add_edge(
                        NodeId(i as u32),
                        NodeId(t as u32),
                        1.0 + (next() % 40) as f64 / 10.0,
                    );
                }
            }
        }
        let nodes: Vec<NodePattern> = (0..n)
            .map(|i| NodePattern {
                sector: i,
                radius: 0.5,
                count: 1 + (i * 7) % 23,
                pattern: Vec::new(),
            })
            .collect();
        let graph: PatternGraph = b.build(nodes, |acc, w| *acc += w);

        let mut node_crossings = vec![vec![0usize; n]; k];
        for i in 0..n {
            node_crossings[cluster(i)][i] = 5;
        }
        let e = graph.edge_count();
        let mut edge_crossings = vec![vec![0usize; e]; k];
        for (id, s, _, _) in graph.edges_iter() {
            edge_crossings[cluster(s.index())][id.index()] = 5;
        }
        let stats = ClusterStats {
            k,
            node_crossings,
            edge_crossings,
            cluster_sizes: vec![10; k],
        };
        ScaleFixture { graph, stats }
    }

    /// `render/bh_10k`: Barnes–Hut layout dominates — aggregated detail
    /// under a wide budget keeps emission bounded without throttling the
    /// layout work being measured.
    pub fn run_render_bh(&self) -> (String, usize) {
        GraphPlot::from_graph(&self.graph, 24, &self.stats, 0.4, 0.5)
            .with_engine(LayoutEngine::BarnesHut)
            .with_detail(DetailLevel::Aggregated)
            .with_budget(RenderBudget::capped(50_000))
            .render_counted()
    }

    /// `render/lod_10k`: level-of-detail emission dominates — the O(n)
    /// circular layout plus a tight budget that forces full degradation
    /// (owner attribution, bundling, glyph aggregation).
    pub fn run_render_lod(&self) -> (String, usize) {
        GraphPlot::from_graph(&self.graph, 24, &self.stats, 0.4, 0.5)
            .with_engine(LayoutEngine::Circular)
            .with_detail(DetailLevel::Auto)
            .with_budget(RenderBudget::capped(5_000))
            .render_counted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_compose_end_to_end() {
        let fx = StageFixture::standard();
        let layer = fx.run_build();
        assert!(layer.graph.node_count() > 0);
        assert_eq!(layer.paths.len(), fx.dataset.len());

        let features = fx.run_features(&layer);
        assert_eq!(features.len(), fx.dataset.len());

        let labels = fx.run_cluster(&layer);
        assert_eq!(labels.len(), fx.dataset.len());
        assert!(labels.iter().all(|&l| l < fx.config.k));

        let model = fx.run_fit();
        assert_eq!(model.labels.len(), fx.dataset.len());
        let svg = fx.run_render(&model);
        assert!(!svg.is_empty());
    }

    #[test]
    fn scale_fixture_renders_within_budget() {
        let fx = ScaleFixture::standard_10k();
        assert_eq!(fx.graph.node_count(), 10_000);
        assert!(fx.graph.edge_count() > 10_000);
        let (svg, elements) = fx.run_render_lod();
        assert!(elements <= 5_000, "lod render emitted {elements} elements");
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn fixture_is_deterministic() {
        let a = StageFixture::standard().run_fit();
        let b = StageFixture::standard().run_fit();
        assert_eq!(a.labels, b.labels);
    }
}
