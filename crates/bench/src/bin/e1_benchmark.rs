//! E1 — the Benchmark frame (paper Figure 3, frame 1.2).
//!
//! Evaluates k-Graph against the 14-baseline set over the full dataset
//! collection, on the frame's four measures, and regenerates its artefacts:
//! per-measure box plots (SVG), filterable summary tables and the raw
//! records CSV.
//!
//! Usage: `cargo run --release -p bench --bin e1_benchmark [--quick]`

use bench::{out_dir, records_to_csv, run_benchmark, KGRAPH_NAME};
use graphint::csvout::write_csv;
use graphint::frames::benchmark::{BenchmarkFrame, Filter, Measure};
use graphint::Report;
use tscore::DatasetKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let specs = if quick {
        datasets::quick_collection()
    } else {
        datasets::default_collection()
    };
    println!(
        "E1: benchmark over {} datasets ({} mode)\n",
        specs.len(),
        if quick { "quick" } else { "full" }
    );
    let (records, timings) = run_benchmark(&specs, 11, quick, true);
    let frame = BenchmarkFrame::new(records);

    let out = out_dir().join("e1_benchmark");
    std::fs::create_dir_all(&out).expect("create out dir");
    write_csv(&out.join("records.csv"), &records_to_csv(&frame.records)).expect("write CSV");

    let mut report = Report::new("Graphint — Benchmark frame (E1)");
    for measure in Measure::ALL {
        println!("== {} over all datasets ==", measure.name());
        let table = frame.summary_table(measure, &Filter::default());
        println!("{table}");
        let svg = frame.render_boxplot(measure, &Filter::default(), Some(KGRAPH_NAME));
        std::fs::write(
            out.join(format!("boxplot_{}.svg", measure.name().to_lowercase())),
            &svg,
        )
        .expect("write SVG");
        report.section(format!("Box plot — {}", measure.name()));
        report.add_svg(&svg);
        report.add_pre(&table);
    }

    // The frame's filters, exercised the way the demo does.
    let filters: Vec<(&str, Filter)> = vec![
        (
            "type = simulated",
            Filter {
                kinds: Some(vec![DatasetKind::Simulated]),
                ..Default::default()
            },
        ),
        (
            "type = sensor",
            Filter {
                kinds: Some(vec![DatasetKind::Sensor]),
                ..Default::default()
            },
        ),
        (
            "length <= 128",
            Filter {
                length: Some((0, 128)),
                ..Default::default()
            },
        ),
        (
            "length > 128",
            Filter {
                length: Some((129, usize::MAX)),
                ..Default::default()
            },
        ),
        (
            "2 classes",
            Filter {
                classes: Some((2, 2)),
                ..Default::default()
            },
        ),
        (
            "3+ classes",
            Filter {
                classes: Some((3, usize::MAX)),
                ..Default::default()
            },
        ),
    ];
    report.section("Filtered views (ARI)");
    for (name, filter) in &filters {
        let scores = frame.scores_by_method(Measure::Ari, filter);
        if scores.iter().all(|(_, s)| s.is_empty()) {
            continue;
        }
        println!("== filter: {name} ==");
        let table = frame.summary_table(Measure::Ari, filter);
        println!("{table}");
        report.add_text(&format!("Filter: {name}"));
        report.add_pre(&table);
        let svg = frame.render_boxplot(Measure::Ari, filter, Some(KGRAPH_NAME));
        report.add_svg(&svg);
    }

    // Timing summary.
    let mut rows: Vec<Vec<String>> = timings
        .iter()
        .map(|(m, d, s)| vec![m.clone(), d.clone(), format!("{s:.2}")])
        .collect();
    rows.sort();
    write_csv(
        &out.join("timings.csv"),
        &std::iter::once(vec![
            "method".to_string(),
            "dataset".to_string(),
            "seconds".to_string(),
        ])
        .chain(rows)
        .collect::<Vec<_>>(),
    )
    .expect("write timings");

    report
        .write(&out.join("benchmark.html"))
        .expect("write report");
    println!("wrote {}", out.join("benchmark.html").display());

    // Headline check: mean ARI rank of k-Graph.
    if let Some(kg) = frame.mean_score(KGRAPH_NAME, Measure::Ari, &Filter::default()) {
        let better: usize = frame
            .methods()
            .iter()
            .filter(|m| {
                frame
                    .mean_score(m, Measure::Ari, &Filter::default())
                    .is_some_and(|s| s > kg)
            })
            .count();
        println!(
            "k-Graph mean ARI {kg:.3}; {better} of {} methods score higher",
            frame.methods().len() - 1
        );
    }
}
