//! E6 — scalability shape (k-Graph paper's runtime behaviour).
//!
//! Measures end-to-end k-Graph runtime while sweeping (a) the number of
//! series and (b) the series length on CBF, with a per-stage breakdown at
//! the largest setting. Absolute numbers are machine-specific; the *shape*
//! (roughly linear in both axes for fixed configuration) is what the
//! experiment checks.
//!
//! Usage: `cargo run --release -p bench --bin e6_scalability [--quick]`

use bench::{experiment_kgraph_config, out_dir};
use graphint::ascii::render_table;
use graphint::csvout::write_csv;
use graphint::plot::line::{LineChart, Series};
use kgraph::KGraph;
use std::time::Instant;

fn time_fit(per_class: usize, length: usize, seed: u64) -> f64 {
    let dataset = datasets::cbf::cbf(per_class, length, seed);
    let t0 = Instant::now();
    let model = KGraph::new(experiment_kgraph_config(3, seed)).fit(&dataset);
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(model.labels.len(), dataset.len());
    secs
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: Vec<usize> = if quick {
        vec![5, 10]
    } else {
        vec![5, 10, 20, 40]
    };
    let lengths: Vec<usize> = if quick {
        vec![64, 96]
    } else {
        vec![64, 128, 192, 256]
    };

    println!("E6: scalability sweeps on CBF\n");
    let mut size_rows = Vec::new();
    let mut size_pts = Vec::new();
    for &pc in &sizes {
        let secs = time_fit(pc, 128, 3);
        println!("  n = {:>4} series, length 128: {secs:.2}s", pc * 3);
        size_rows.push(vec![(pc * 3).to_string(), format!("{secs:.3}")]);
        size_pts.push(((pc * 3) as f64, secs));
    }
    let mut len_rows = Vec::new();
    let mut len_pts = Vec::new();
    for &len in &lengths {
        let secs = time_fit(10, len, 3);
        println!("  n = 30 series, length {len}: {secs:.2}s");
        len_rows.push(vec![len.to_string(), format!("{secs:.3}")]);
        len_pts.push((len as f64, secs));
    }

    println!("\nruntime vs dataset size:");
    println!("{}", render_table(&["#series", "seconds"], &size_rows));
    println!("runtime vs series length:");
    println!("{}", render_table(&["length", "seconds"], &len_rows));

    let out = out_dir().join("e6_scalability");
    std::fs::create_dir_all(&out).expect("create out dir");
    let mut header = vec![vec!["x".to_string(), "seconds".to_string()]];
    header.extend(size_rows);
    write_csv(&out.join("runtime_vs_size.csv"), &header).expect("write CSV");
    let mut header = vec![vec!["x".to_string(), "seconds".to_string()]];
    header.extend(len_rows);
    write_csv(&out.join("runtime_vs_length.csv"), &header).expect("write CSV");

    let mut chart = LineChart::new("k-Graph runtime scaling");
    chart.x_label = "x (#series or length)".into();
    chart.y_label = "seconds".into();
    chart.series.push(Series {
        label: "vs #series (len 128)".into(),
        points: size_pts,
        color: "#1f77b4".into(),
        width: 1.5,
    });
    chart.series.push(Series {
        label: "vs length (30 series)".into(),
        points: len_pts,
        color: "#ff7f0e".into(),
        width: 1.5,
    });
    std::fs::write(out.join("scaling.svg"), chart.render()).expect("write SVG");
    println!("wrote {}", out.join("scaling.svg").display());
}
