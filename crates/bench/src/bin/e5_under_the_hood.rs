//! E5 — the Under-the-hood frame (paper Figure 3, frame 4; demo
//! Scenario 3).
//!
//! For a selected dataset: 4.1 the length-selection curves `Wc(ℓ)`,
//! `We(ℓ)` and `Wc·We` with the selected ℓ̄ marked, 4.2 the feature-matrix
//! heatmap, 4.3 the consensus-matrix heatmap — all grouped by the final
//! clustering, as the frame displays them.
//!
//! Usage: `cargo run --release -p bench --bin e5_under_the_hood [--quick]`

use bench::{experiment_kgraph_config, out_dir};
use graphint::frames::under_the_hood::UnderTheHoodFrame;
use graphint::Report;
use kgraph::KGraph;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let datasets_to_show: Vec<tscore::Dataset> = if quick {
        vec![datasets::cbf::cbf(8, 64, 21)]
    } else {
        vec![
            datasets::cbf::cbf(20, 128, 21),
            datasets::shapes::trace_like(15, 150, 22),
        ]
    };
    let out = out_dir().join("e5_under_the_hood");
    std::fs::create_dir_all(&out).expect("create out dir");
    let mut report = Report::new("Graphint — Under the hood (E5)");

    for dataset in &datasets_to_show {
        let k = dataset.n_classes().max(2);
        println!("== {} ==", dataset.name());
        let model = KGraph::new(experiment_kgraph_config(k, 21)).fit(dataset);
        let frame = UnderTheHoodFrame::new(&model);
        println!("{}", frame.summary());

        report.section(format!("Dataset: {}", dataset.name()));
        report.add_pre(&frame.summary());
        let ls = frame.render_length_selection();
        let fm = frame.render_feature_matrix();
        let cm = frame.render_consensus_matrix();
        std::fs::write(
            out.join(format!("{}_length_selection.svg", dataset.name())),
            &ls,
        )
        .expect("write SVG");
        std::fs::write(
            out.join(format!("{}_feature_matrix.svg", dataset.name())),
            &fm,
        )
        .expect("write SVG");
        std::fs::write(
            out.join(format!("{}_consensus_matrix.svg", dataset.name())),
            &cm,
        )
        .expect("write SVG");
        report.add_svg(&ls);
        report.add_svg(&fm);
        report.add_svg(&cm);
    }
    report
        .write(&out.join("under_the_hood.html"))
        .expect("write report");
    println!("wrote {}", out.join("under_the_hood.html").display());
}
