//! E3 — the Graph frame / "k-Graph in action" (paper Figure 3, frame 2;
//! demo Scenario 2).
//!
//! Fits k-Graph, searches the (λ, γ) thresholds so that every cluster has
//! at least one coloured node (the scenario's task), renders the
//! node-link view, the detail panel of the most exclusive node of each
//! cluster, and the highlighted subsequences on a member series.
//!
//! Usage: `cargo run --release -p bench --bin e3_graph_frame [--quick]`

use bench::{experiment_kgraph_config, out_dir};
use graphint::ascii::render_table;
use graphint::frames::graph::GraphFrame;
use graphint::Report;
use kgraph::KGraph;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let dataset = if quick {
        datasets::shapes::trace_like(8, 100, 5)
    } else {
        datasets::shapes::trace_like(15, 150, 5)
    };
    let k = dataset.n_classes();
    println!("E3: graph frame on {} (k = {k})\n", dataset.name());
    let model = KGraph::new(experiment_kgraph_config(k, 5)).fit(&dataset);
    let frame = GraphFrame::with_auto_thresholds(&model);
    println!(
        "auto thresholds: λ = {:.2}, γ = {:.2} (largest values with ≥1 coloured node per cluster)",
        frame.lambda, frame.gamma
    );
    let counts = frame.colored_nodes_per_cluster();
    let rows: Vec<Vec<String>> = counts
        .iter()
        .enumerate()
        .map(|(c, n)| vec![format!("C{c}"), n.to_string()])
        .collect();
    println!("{}", render_table(&["cluster", "coloured nodes"], &rows));
    let order = frame.exploration_order();
    println!(
        "suggested exploration order (PageRank over transitions): {:?} …",
        &order[..order.len().min(8)]
    );

    let out = out_dir().join("e3_graph_frame");
    std::fs::create_dir_all(&out).expect("create out dir");
    let mut report = Report::new("Graphint — Graph frame (E3)");
    report.section(format!(
        "Graph (ℓ̄ = {}, λ = {:.2}, γ = {:.2})",
        model.best_length(),
        frame.lambda,
        frame.gamma
    ));
    let graph_svg = frame.render_graph();
    std::fs::write(out.join("graph.svg"), &graph_svg).expect("write SVG");
    report.add_svg(&graph_svg);

    // Most exclusive node per cluster + its pattern and a highlighted
    // member series.
    let stats = frame.stats().clone();
    report.section("Node exploration");
    for c in 0..k {
        let best_node = (0..model.best().graph.node_count())
            .max_by(|&a, &b| {
                stats
                    .node_exclusivity(c, a)
                    .partial_cmp(&stats.node_exclusivity(c, b))
                    .expect("NaN exclusivity")
            })
            .expect("graph has nodes");
        let detail = frame.node_detail(best_node);
        println!(
            "cluster {c}: most exclusive node {best_node} (excl {:.2}, repr {:.2}, count {})",
            detail.exclusivity[c], detail.representativity[c], detail.count
        );
        let detail_svg = frame.render_node_detail(best_node);
        std::fs::write(
            out.join(format!("node_{best_node}_detail.svg")),
            &detail_svg,
        )
        .expect("write SVG");
        report.add_text(&format!(
            "Cluster {c}: node {best_node} — exclusivity {:.2}, representativity {:.2}",
            detail.exclusivity[c], detail.representativity[c]
        ));
        report.add_svg(&detail_svg);

        // Highlight its windows on the first member series of the cluster.
        if let Some(series_idx) = model.labels.iter().position(|&l| l == c) {
            let hl = frame.render_highlighted_series(series_idx, best_node, &dataset);
            std::fs::write(
                out.join(format!("series_{series_idx}_node_{best_node}.svg")),
                &hl,
            )
            .expect("write SVG");
            report.add_svg(&hl);
        }
    }
    report
        .write(&out.join("graph_frame.html"))
        .expect("write report");
    println!("\nwrote {}", out.join("graph_frame.html").display());
}
