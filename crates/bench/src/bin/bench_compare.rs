//! Compares a fresh bench run against a committed baseline and fails
//! (exit 1) when any pipeline stage regressed beyond the threshold.
//!
//! ```text
//! bench_compare <base.json> <fresh.json> [--max-ratio 1.5]
//! ```
//!
//! Both files are `BENCH_*.json` baselines written by the criterion shim.
//! Entries are matched by full label; fresh/base median ratios are
//! aggregated as a geometric mean per stage (the `<stage>` segment of
//! `pipeline/<stage>/<variant>` labels). This is the CI bench smoke gate:
//! deliberately coarse (1.5x by default) so shared-runner noise does not
//! flap, while a real stage-wide regression still fails the build.

use bench::baseline::{compare, parse_baseline};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut max_ratio = 1.5f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--max-ratio" => {
                i += 1;
                max_ratio = match args.get(i).and_then(|v| v.parse().ok()) {
                    Some(v) if v > 0.0 => v,
                    _ => {
                        eprintln!("--max-ratio needs a positive number");
                        return ExitCode::from(2);
                    }
                };
            }
            other => paths.push(other),
        }
        i += 1;
    }
    let [base_path, fresh_path] = paths.as_slice() else {
        eprintln!("usage: bench_compare <base.json> <fresh.json> [--max-ratio 1.5]");
        return ExitCode::from(2);
    };

    let base = match std::fs::read_to_string(base_path) {
        Ok(t) => parse_baseline(&t),
        Err(e) => {
            eprintln!("cannot read baseline {base_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let fresh = match std::fs::read_to_string(fresh_path) {
        Ok(t) => parse_baseline(&t),
        Err(e) => {
            eprintln!("cannot read fresh run {fresh_path}: {e}");
            return ExitCode::from(2);
        }
    };
    if base.is_empty() || fresh.is_empty() {
        eprintln!(
            "no parsable entries (base: {}, fresh: {})",
            base.len(),
            fresh.len()
        );
        return ExitCode::from(2);
    }

    let comparisons = compare(&base, &fresh);
    if comparisons.is_empty() {
        eprintln!("no entries matched between baseline and fresh run");
        return ExitCode::from(2);
    }

    println!("{:<20} {:>8} {:>14}", "stage", "matched", "geomean ratio");
    let mut regressed = false;
    for c in &comparisons {
        let flag = if c.geomean_ratio > max_ratio {
            regressed = true;
            "  <-- REGRESSION"
        } else {
            ""
        };
        println!(
            "{:<20} {:>8} {:>13.3}x{flag}",
            c.stage, c.matched, c.geomean_ratio
        );
    }
    if regressed {
        eprintln!("at least one stage exceeded the {max_ratio}x gate");
        ExitCode::FAILURE
    } else {
        println!("all stages within the {max_ratio}x gate");
        ExitCode::SUCCESS
    }
}
