//! E2 — the Clustering-comparison frame (paper Figure 3, frame 1.1).
//!
//! For each selected dataset: partitions by k-Graph and the two baselines
//! the demo shows (k-Means, k-Shape), each panel colouring series by their
//! true labels and grouping them by the predicted cluster, with per-method
//! ARI. "Mixed colors mean low clustering accuracy."
//!
//! Usage: `cargo run --release -p bench --bin e2_comparison [--quick]`

use bench::{experiment_kgraph_config, out_dir};
use clustering::method::{ClusteringMethod, MethodKind};
use graphint::frames::comparison::{ComparisonFrame, MethodPartition};
use graphint::Report;
use kgraph::KGraph;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let specs = if quick {
        datasets::quick_collection()
    } else {
        datasets::default_collection()
            .into_iter()
            .filter(|s| ["CBF", "TraceLike", "DeviceLike", "EcgLike"].contains(&s.name))
            .collect()
    };
    let out = out_dir().join("e2_comparison");
    std::fs::create_dir_all(&out).expect("create out dir");
    let mut report = Report::new("Graphint — Clustering comparison frame (E2)");

    for spec in &specs {
        let dataset = (spec.build)();
        let k = dataset.n_classes().max(2);
        println!("dataset {} (k = {k})", spec.name);

        let model = KGraph::new(experiment_kgraph_config(k, 3)).fit(&dataset);
        let kmeans = ClusteringMethod::new(MethodKind::KMeansZnorm, k, 3).run(&dataset);
        let kshape = ClusteringMethod::new(MethodKind::KShape, k, 3).run(&dataset);

        let frame = ComparisonFrame::build(
            &dataset,
            &[
                MethodPartition {
                    name: "k-Graph".into(),
                    labels: model.labels.clone(),
                },
                MethodPartition {
                    name: "k-Means".into(),
                    labels: kmeans,
                },
                MethodPartition {
                    name: "k-Shape".into(),
                    labels: kshape,
                },
            ],
        );
        println!("{}", frame.summary());

        report.section(format!("Dataset: {}", spec.name));
        report.add_pre(&frame.summary());
        for (name, svg) in &frame.panels {
            std::fs::write(
                out.join(format!("{}_{}.svg", spec.name, name.replace(' ', "_"))),
                svg,
            )
            .expect("write SVG");
            report.add_svg(svg);
        }
    }
    report
        .write(&out.join("comparison.html"))
        .expect("write report");
    println!("wrote {}", out.join("comparison.html").display());
}
