//! E0 — the k-Graph pipeline end-to-end (paper Figure 1).
//!
//! Runs every stage on CBF and prints the intermediate artefacts: the
//! per-length graphs (a), the graph embeddings (b), the per-length
//! partitions (c) and the consensus clustering (d), then the final labels
//! and their agreement with ground truth.
//!
//! Usage: `cargo run --release -p bench --bin e0_pipeline [--quick]`

use bench::{experiment_kgraph_config, out_dir};
use clustering::metrics::adjusted_rand_index;
use graphint::ascii::{partition_summary, render_table};
use graphint::csvout::write_csv;
use kgraph::KGraph;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let per_class = if quick { 8 } else { 20 };
    let length = if quick { 64 } else { 128 };
    let dataset = datasets::cbf::cbf(per_class, length, 7);
    println!(
        "E0: k-Graph pipeline on {} ({} series, length {}, {} classes)\n",
        dataset.name(),
        dataset.len(),
        length,
        dataset.n_classes()
    );

    let k = dataset.n_classes();
    let t0 = std::time::Instant::now();
    let model = KGraph::new(experiment_kgraph_config(k, 7)).fit(&dataset);
    let elapsed = t0.elapsed().as_secs_f64();

    // (b) Graph embedding per length.
    println!("(b) graph embedding — one graph per subsequence length:");
    let rows: Vec<Vec<String>> = model
        .layers
        .iter()
        .map(|l| {
            vec![
                l.length.to_string(),
                l.graph.node_count().to_string(),
                l.graph.edge_count().to_string(),
                l.paths[0].len().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["length ℓ", "|N|", "|E|", "path len"], &rows)
    );

    // (c) Per-length partitions.
    println!("(c) graph clustering — partition L_ℓ per length:");
    let rows: Vec<Vec<String>> = model
        .layers
        .iter()
        .map(|l| {
            vec![
                l.length.to_string(),
                partition_summary(&l.labels),
                format!(
                    "{:.3}",
                    adjusted_rand_index(dataset.labels().unwrap(), &l.labels)
                ),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["length ℓ", "partition", "ARI vs truth"], &rows)
    );

    // (d) Consensus.
    let mc = &model.consensus;
    let n = mc.rows();
    let mut off_diag = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            off_diag.push(mc[(i, j)]);
        }
    }
    println!(
        "(d) consensus clustering — MC is {}x{}, off-diagonal mean {:.3}, final partition {}",
        n,
        n,
        tscore::stats::mean(&off_diag),
        partition_summary(&model.labels)
    );

    let ari = adjusted_rand_index(dataset.labels().unwrap(), &model.labels);
    println!("\nfinal k-Graph ARI vs ground truth: {ari:.3}   (fit took {elapsed:.2}s)");
    println!(
        "selected length ℓ̄ = {} (Wc = {:.3}, We = {:.3})",
        model.best_length(),
        model.scores[model.best_layer].wc,
        model.scores[model.best_layer].we
    );

    // Persist a machine-readable summary.
    let mut rows = vec![vec![
        "length".to_string(),
        "nodes".to_string(),
        "edges".to_string(),
        "wc".to_string(),
        "we".to_string(),
        "selected".to_string(),
    ]];
    for (i, (layer, score)) in model.layers.iter().zip(&model.scores).enumerate() {
        rows.push(vec![
            layer.length.to_string(),
            layer.graph.node_count().to_string(),
            layer.graph.edge_count().to_string(),
            format!("{:.4}", score.wc),
            format!("{:.4}", score.we),
            (i == model.best_layer).to_string(),
        ]);
    }
    let path = out_dir().join("e0_pipeline/layers.csv");
    write_csv(&path, &rows).expect("write CSV");
    println!("\nwrote {}", path.display());
}
