//! E4 — the Interpretability-test frame (paper Figure 3, frame 3; demo
//! Scenario 1).
//!
//! Runs the 5-question quiz with simulated users: a centroid reader
//! against k-Means and k-Shape, and a graphoid reader against k-Graph, over
//! repeated trials and several datasets. The paper's expected outcome is
//! that the graph representation yields higher user scores on datasets
//! whose classes differ by local patterns.
//!
//! Usage: `cargo run --release -p bench --bin e4_quiz [--quick]`

use bench::{experiment_kgraph_config, out_dir};
use graphint::ascii::render_table;
use graphint::csvout::write_csv;
use graphint::frames::quiz_frame::{QuizConfig, QuizFrame};
use graphint::Report;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let specs = if quick {
        datasets::quick_collection()
    } else {
        datasets::default_collection()
            .into_iter()
            .filter(|s| ["CBF", "TraceLike", "TwoPatterns", "DeviceLike"].contains(&s.name))
            .collect()
    };
    let trials = if quick { 6 } else { 25 };
    let out = out_dir().join("e4_quiz");
    std::fs::create_dir_all(&out).expect("create out dir");
    let mut report = Report::new("Graphint — Interpretability test (E4)");
    let mut csv = vec![vec![
        "dataset".to_string(),
        "representation".to_string(),
        "mean_score".to_string(),
        "trials".to_string(),
    ]];
    let mut grand: Vec<(String, Vec<f64>)> = Vec::new();

    for spec in &specs {
        let dataset = (spec.build)();
        let k = dataset.n_classes().max(2);
        println!("== {} ==", spec.name);
        let cfg = QuizConfig {
            trials,
            ..QuizConfig::new(k, 13)
        };
        let frame = QuizFrame::run(&dataset, cfg, Some(experiment_kgraph_config(k, 13)));
        println!("{}", frame.summary());
        report.section(format!("Dataset: {}", spec.name));
        report.add_pre(&frame.summary());
        for s in &frame.scores {
            csv.push(vec![
                spec.name.to_string(),
                s.method.clone(),
                format!("{:.4}", s.mean()),
                s.fractions.len().to_string(),
            ]);
            match grand.iter_mut().find(|(m, _)| m == &s.method) {
                Some((_, all)) => all.extend(&s.fractions),
                None => grand.push((s.method.clone(), s.fractions.clone())),
            }
        }
    }

    println!("== overall (all datasets pooled) ==");
    let rows: Vec<Vec<String>> = grand
        .iter()
        .map(|(m, scores)| {
            vec![
                m.clone(),
                format!("{:.3}", tscore::stats::mean(scores)),
                scores.len().to_string(),
            ]
        })
        .collect();
    let overall = render_table(&["representation", "mean score", "quizzes"], &rows);
    println!("{overall}");
    report.section("Overall");
    report.add_pre(&overall);

    write_csv(&out.join("quiz_scores.csv"), &csv).expect("write CSV");
    report.write(&out.join("quiz.html")).expect("write report");
    println!("wrote {}", out.join("quiz.html").display());
}
