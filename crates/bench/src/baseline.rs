//! Parsing and comparison of `BENCH_*.json` baselines.
//!
//! The criterion shim persists every bench run as a flat JSON file (see
//! `crates/shims/criterion`). This module reads two such files — a
//! committed baseline and a fresh run — matches entries by name, and
//! aggregates fresh/base ratios **per pipeline stage** (the second path
//! segment of `pipeline/<stage>/<variant>` labels; other labels group
//! under their full name). The aggregate is a geometric mean of median
//! ratios: robust to one noisy variant, sensitive to a stage-wide slide.
//!
//! The parser is hand-rolled for exactly the shim's output shape — one
//! `results` array of flat objects with string `name` and integer stats —
//! because the workspace deliberately has no serde.

/// One parsed benchmark entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Full bench label, e.g. `pipeline/build/l24`.
    pub name: String,
    /// Median sample time in nanoseconds (falls back to `mean_ns` when the
    /// file predates the `median_ns` field).
    pub median_ns: f64,
}

/// Parses the shim's baseline JSON. Returns an empty vector for files
/// without a `results` array; entries missing a name or any usable
/// duration are skipped.
pub fn parse_baseline(text: &str) -> Vec<BenchEntry> {
    let mut out = Vec::new();
    // Object boundaries inside "results": flat objects, no nesting.
    let Some(results_at) = text.find("\"results\"") else {
        return out;
    };
    let mut rest = &text[results_at..];
    while let Some(open) = rest.find('{') {
        let Some(close) = rest[open..].find('}') else {
            break;
        };
        let obj = &rest[open + 1..open + close];
        if let Some(entry) = parse_entry(obj) {
            out.push(entry);
        }
        rest = &rest[open + close + 1..];
    }
    out
}

/// Parses one flat `"key": value` object body.
fn parse_entry(obj: &str) -> Option<BenchEntry> {
    let name = string_field(obj, "name")?;
    let median = number_field(obj, "median_ns").or_else(|| number_field(obj, "mean_ns"))?;
    Some(BenchEntry {
        name,
        median_ns: median,
    })
}

fn string_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn number_field(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// The stage key of a bench label: the second segment of
/// `group/stage/variant` labels, the whole label otherwise.
pub fn stage_of(name: &str) -> &str {
    let mut parts = name.splitn(3, '/');
    let _group = parts.next();
    match (parts.next(), parts.next()) {
        // group/stage/variant → stage
        (Some(stage), Some(_)) => stage,
        // group/variant or bare label → whole thing
        _ => name,
    }
}

/// Per-stage comparison of a fresh run against a baseline.
#[derive(Debug, Clone)]
pub struct StageComparison {
    /// Stage key (see [`stage_of`]).
    pub stage: String,
    /// Number of benchmark entries present in both files for this stage.
    pub matched: usize,
    /// Geometric mean of `fresh_median / base_median` over matched entries.
    pub geomean_ratio: f64,
}

/// Matches entries by full name and aggregates median ratios per stage.
/// Entries present in only one file are ignored (they have no ratio);
/// stages appear in first-seen (baseline) order.
pub fn compare(base: &[BenchEntry], fresh: &[BenchEntry]) -> Vec<StageComparison> {
    let mut stages: Vec<StageComparison> = Vec::new();
    let mut log_sums: Vec<f64> = Vec::new();
    for b in base {
        let Some(f) = fresh.iter().find(|f| f.name == b.name) else {
            continue;
        };
        if b.median_ns <= 0.0 || f.median_ns <= 0.0 {
            continue;
        }
        let ratio = f.median_ns / b.median_ns;
        let stage = stage_of(&b.name);
        match stages
            .iter_mut()
            .zip(&mut log_sums)
            .find(|(s, _)| s.stage == stage)
        {
            Some((s, ls)) => {
                s.matched += 1;
                *ls += ratio.ln();
            }
            None => {
                stages.push(StageComparison {
                    stage: stage.to_string(),
                    matched: 1,
                    geomean_ratio: 1.0,
                });
                log_sums.push(ratio.ln());
            }
        }
    }
    for (s, ls) in stages.iter_mut().zip(&log_sums) {
        s.geomean_ratio = (ls / s.matched as f64).exp();
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "results": [
    {"name": "pipeline/build/l24", "min_ns": 90, "mean_ns": 100, "median_ns": 100, "max_ns": 120, "samples": 10},
    {"name": "pipeline/build/l48", "min_ns": 180, "mean_ns": 210, "median_ns": 200, "max_ns": 240, "samples": 10},
    {"name": "pipeline/fit/full", "min_ns": 900, "mean_ns": 1100, "median_ns": 1000, "max_ns": 1300, "samples": 10}
  ]
}
"#;

    #[test]
    fn parses_shim_output() {
        let entries = parse_baseline(SAMPLE);
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].name, "pipeline/build/l24");
        assert_eq!(entries[0].median_ns, 100.0);
        assert_eq!(entries[2].median_ns, 1000.0);
    }

    #[test]
    fn falls_back_to_mean_for_old_files() {
        let old = r#"{"results": [
            {"name": "g/s/v", "min_ns": 1, "mean_ns": 5, "max_ns": 9, "samples": 3}
        ]}"#;
        let entries = parse_baseline(old);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].median_ns, 5.0);
    }

    #[test]
    fn tolerates_garbage() {
        assert!(parse_baseline("").is_empty());
        assert!(parse_baseline("{}").is_empty());
        assert!(parse_baseline("not json at all").is_empty());
        assert!(parse_baseline("{\"results\": [ {\"nope\": 1} ]}").is_empty());
    }

    #[test]
    fn stage_extraction() {
        assert_eq!(stage_of("pipeline/build/l24"), "build");
        assert_eq!(stage_of("pipeline/fit/full"), "fit");
        assert_eq!(stage_of("distances/euclidean"), "distances/euclidean");
        assert_eq!(stage_of("bare"), "bare");
    }

    #[test]
    fn compare_geomean_per_stage() {
        let base = parse_baseline(SAMPLE);
        // build/l24 doubled, build/l48 halved → geomean exactly 1; fit 1.5x.
        let fresh = vec![
            BenchEntry {
                name: "pipeline/build/l24".into(),
                median_ns: 200.0,
            },
            BenchEntry {
                name: "pipeline/build/l48".into(),
                median_ns: 100.0,
            },
            BenchEntry {
                name: "pipeline/fit/full".into(),
                median_ns: 1500.0,
            },
        ];
        let cmp = compare(&base, &fresh);
        assert_eq!(cmp.len(), 2);
        let build = cmp.iter().find(|c| c.stage == "build").unwrap();
        assert_eq!(build.matched, 2);
        assert!((build.geomean_ratio - 1.0).abs() < 1e-12);
        let fit = cmp.iter().find(|c| c.stage == "fit").unwrap();
        assert_eq!(fit.matched, 1);
        assert!((fit.geomean_ratio - 1.5).abs() < 1e-12);
    }

    #[test]
    fn compare_skips_unmatched_and_degenerate() {
        let base = vec![
            BenchEntry {
                name: "only/in/base".into(),
                median_ns: 10.0,
            },
            BenchEntry {
                name: "g/zero/v".into(),
                median_ns: 0.0,
            },
        ];
        let fresh = vec![BenchEntry {
            name: "g/zero/v".into(),
            median_ns: 5.0,
        }];
        assert!(compare(&base, &fresh).is_empty());
    }
}
