//! # graphint-repro — umbrella crate
//!
//! Re-exports the whole Graphint / k-Graph reproduction as one façade so
//! examples and downstream users can depend on a single crate:
//!
//! ```
//! use graphint_repro::prelude::*;
//!
//! let dataset = graphint_repro::datasets::cbf::cbf(5, 64, 0);
//! let model = KGraph::with_k(3, 0).fit(&dataset);
//! assert_eq!(model.labels.len(), dataset.len());
//! ```
//!
//! Crate map (see `DESIGN.md` for the full inventory):
//!
//! * [`tscore`] — time series primitives and distances,
//! * [`linalg`] — matrices, eigen, PCA, FFT, KDE,
//! * [`tsgraph`] — directed graphs and layouts,
//! * [`clustering`] — baseline algorithms + quality metrics,
//! * [`datasets`] — synthetic UCR-like dataset generators,
//! * [`kgraph`] — the k-Graph pipeline (the paper's core),
//! * [`graphint`] — the five Graphint frames, quiz and report rendering.

pub use clustering;
pub use datasets;
pub use graphint;
pub use kgraph;
pub use linalg;
pub use tscore;
pub use tsgraph;

/// One-stop imports for examples and quick scripts.
pub mod prelude {
    pub use clustering::method::{ClusteringMethod, MethodKind};
    pub use clustering::metrics::{
        adjusted_mutual_information, adjusted_rand_index, normalized_mutual_information, rand_index,
    };
    pub use graphint::frames::benchmark::{BenchmarkFrame, Filter, Measure};
    pub use graphint::frames::comparison::{ComparisonFrame, MethodPartition};
    pub use graphint::frames::graph::GraphFrame;
    pub use graphint::frames::quiz_frame::{QuizConfig, QuizFrame};
    pub use graphint::frames::under_the_hood::UnderTheHoodFrame;
    pub use graphint::Report;
    pub use kgraph::{KGraph, KGraphConfig, KGraphModel};
    pub use tscore::{Dataset, DatasetKind, TimeSeries};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_compiles_and_runs() {
        let ds = datasets::cbf::cbf(4, 48, 0);
        let cfg = KGraphConfig {
            n_lengths: 2,
            psi: 8,
            pca_sample: 200,
            n_init: 2,
            ..KGraphConfig::new(3)
        };
        let model = KGraph::new(cfg).fit(&ds);
        assert_eq!(model.labels.len(), ds.len());
        let ari = adjusted_rand_index(ds.labels().unwrap(), &model.labels);
        assert!((-1.0..=1.0).contains(&ari));
    }
}
