//! Generates a single self-contained HTML page with all five Graphint
//! frames for one dataset — the closest static equivalent of opening the
//! demo at <https://graphit.streamlit.app> and walking every tab.
//!
//! ```sh
//! cargo run --release --example full_report [-- <dataset-name>]
//! ```

use graphint_repro::prelude::*;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "CBF".to_string());
    let dataset = graphint_repro::datasets::registry::by_name(&name)
        .unwrap_or_else(|| panic!("unknown dataset {name}; see datasets::default_collection()"));
    let k = dataset.n_classes();
    println!("building the full Graphint report for {name} (k = {k})…");

    let model = KGraph::with_k(k, 3).fit(&dataset);
    let kmeans = ClusteringMethod::new(MethodKind::KMeansZnorm, k, 3).run(&dataset);
    let kshape = ClusteringMethod::new(MethodKind::KShape, k, 3).run(&dataset);

    let mut report = Report::new(format!("Graphint — {name}"));

    // Frame 1.1: clustering comparison.
    let comparison = ComparisonFrame::build(
        &dataset,
        &[
            MethodPartition {
                name: "k-Graph".into(),
                labels: model.labels.clone(),
            },
            MethodPartition {
                name: "k-Means".into(),
                labels: kmeans,
            },
            MethodPartition {
                name: "k-Shape".into(),
                labels: kshape,
            },
        ],
    );
    report.section("Frame 1.1 — Clustering comparison");
    report.add_pre(&comparison.summary());
    for (_, svg) in &comparison.panels {
        report.add_svg(svg);
    }

    // Frame 2: the graph.
    let graph_frame = GraphFrame::with_auto_thresholds(&model);
    report.section(format!(
        "Frame 2 — k-Graph in action (λ = {:.2}, γ = {:.2})",
        graph_frame.lambda, graph_frame.gamma
    ));
    report.add_svg(&graph_frame.render_graph());

    // Frame 3: interpretability test (simulated users).
    let quiz = QuizFrame::run(
        &dataset,
        QuizConfig {
            trials: 10,
            ..QuizConfig::new(k, 3)
        },
        None,
    );
    report.section("Frame 3 — Interpretability test");
    report.add_pre(&quiz.summary());

    // Frame 4: under the hood.
    let hood = UnderTheHoodFrame::new(&model);
    report.section("Frame 4 — Under the hood");
    report.add_pre(&hood.summary());
    report.add_svg(&hood.render_length_selection());
    report.add_svg(&hood.render_feature_matrix());
    report.add_svg(&hood.render_consensus_matrix());

    let path = std::path::PathBuf::from(format!("out/examples/full_report_{name}.html"));
    report.write(&path).expect("write report");
    println!("wrote {}", path.display());
}
