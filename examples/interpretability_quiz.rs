//! Demo Scenario 1 — the interpretability test, either with simulated
//! users (default) or interactively on your terminal (`--interactive`):
//! five random series, guess the cluster k-Graph assigned them to, using
//! only the per-cluster exclusive patterns.
//!
//! ```sh
//! cargo run --release --example interpretability_quiz               # simulated
//! cargo run --release --example interpretability_quiz -- --interactive
//! ```

use graphint_repro::graphint::ascii::sparkline;
use graphint_repro::graphint::quiz::Quiz;
use graphint_repro::prelude::*;
use std::io::Write;

fn main() {
    let interactive = std::env::args().any(|a| a == "--interactive");
    let dataset = graphint_repro::datasets::cbf::cbf(15, 128, 9);
    let k = dataset.n_classes();

    if !interactive {
        // Simulated-user comparison, as in the demo's Scenario 1 wrap-up.
        let cfg = QuizConfig::new(k, 9);
        let frame = QuizFrame::run(&dataset, cfg, None);
        println!("{}", frame.summary());
        println!("(re-run with --interactive to take the quiz yourself)");
        return;
    }

    // Interactive mode: the terminal stands in for the Streamlit frame.
    let model = KGraph::with_k(k, 9).fit(&dataset);
    let graphoids = model.all_gamma_graphoids(0.8);
    println!("k-Graph clustered {} into {k} clusters.", dataset.name());
    println!("Per-cluster exclusive patterns (what you get to look at):\n");
    for (c, g) in graphoids.iter().enumerate() {
        println!(
            "cluster {c} — {} exclusive nodes; dominant patterns:",
            g.nodes.len()
        );
        for node in g.nodes.iter().take(3) {
            let pattern = &model.best().graph.node(*node).pattern;
            println!("    {}", sparkline(pattern));
        }
    }

    let quiz = Quiz::generate(dataset.len(), 5, 99);
    let mut correct = 0;
    for (qn, &idx) in quiz.questions.iter().enumerate() {
        println!(
            "\nQuestion {}: which cluster does this series belong to?",
            qn + 1
        );
        println!("    {}", sparkline(dataset.series()[idx].values()));
        print!("your answer (0-{}): ", k - 1);
        std::io::stdout().flush().ok();
        let mut line = String::new();
        std::io::stdin().read_line(&mut line).ok();
        let answer: usize = line.trim().parse().unwrap_or(0);
        let truth = model.labels[idx];
        if answer == truth {
            println!("correct!");
            correct += 1;
        } else {
            println!("k-Graph assigned it to cluster {truth}");
        }
    }
    println!("\nyour score: {correct}/5");
}
