//! Demo Scenario 2 — exploring the graph: fit k-Graph on an ECG-like
//! dataset, auto-search the (λ, γ) thresholds, inspect the most exclusive
//! node of every cluster and render the Graph frame artefacts.
//!
//! ```sh
//! cargo run --release --example graphoid_explorer
//! ```

use graphint_repro::graphint::ascii::sparkline;
use graphint_repro::prelude::*;

fn main() {
    let dataset = graphint_repro::datasets::shapes::ecg_like(15, 192, 11);
    let k = dataset.n_classes();
    println!("exploring k-Graph on {} (k = {k})", dataset.name());

    let model = KGraph::with_k(k, 11).fit(&dataset);
    println!(
        "final ARI vs ground truth: {:.3}; selected ℓ̄ = {}",
        adjusted_rand_index(dataset.labels().unwrap(), &model.labels),
        model.best_length()
    );

    // Scenario 2's task: find λ and γ so that every cluster has at least
    // one coloured node. GraphFrame searches the largest such thresholds.
    let frame = GraphFrame::with_auto_thresholds(&model);
    println!(
        "auto thresholds: λ = {:.2}, γ = {:.2}",
        frame.lambda, frame.gamma
    );
    println!(
        "coloured nodes per cluster: {:?}",
        frame.colored_nodes_per_cluster()
    );

    // Inspect each cluster's most exclusive node: its pattern is the
    // discriminative subsequence the paper talks about.
    let stats = frame.stats().clone();
    for c in 0..k {
        let node = (0..model.best().graph.node_count())
            .max_by(|&a, &b| {
                stats
                    .node_exclusivity(c, a)
                    .partial_cmp(&stats.node_exclusivity(c, b))
                    .expect("NaN")
            })
            .expect("nodes exist");
        let detail = frame.node_detail(node);
        println!(
            "\ncluster {c}: node {node} (excl {:.2}, repr {:.2}, {} crossings)",
            detail.exclusivity[c], detail.representativity[c], detail.count
        );
        println!("  pattern: {}", sparkline(&detail.pattern));
    }

    // Render the frame's artefacts.
    let dir = std::path::Path::new("out/examples/graphoid_explorer");
    std::fs::create_dir_all(dir).expect("create out dir");
    std::fs::write(dir.join("graph.svg"), frame.render_graph()).expect("write SVG");
    let mut report = Report::new("Graphoid explorer — EcgLike");
    report.section("The graph, coloured by graphoid ownership");
    report.add_svg(&frame.render_graph());
    report
        .write(&dir.join("explorer.html"))
        .expect("write report");
    println!("\nwrote {}", dir.join("explorer.html").display());
}
