//! End-to-end tour of the `graphserve` subsystem: fit a model, register
//! it, start the server on an ephemeral port, query every endpoint over
//! loopback, and shut down cleanly.
//!
//! ```sh
//! cargo run --release --example serve_quickstart
//! ```

use graphserve::{ModelStore, Server, ServerConfig};
use kgraph::{KGraph, KGraphConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

fn request(addr: std::net::SocketAddr, method: &str, target: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {target} HTTP/1.1\r\nhost: quickstart\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("receive");
    let status = raw
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn main() {
    // 1. Fit a k-Graph model on the synthetic CBF dataset.
    println!("fitting a k=3 model on CBF…");
    let t0 = Instant::now();
    let dataset = datasets::cbf::cbf(10, 128, 42);
    let cfg = KGraphConfig {
        n_lengths: 2,
        ..KGraphConfig::new(3)
    }
    .with_seed(42);
    let model = KGraph::new(cfg).fit(&dataset);
    println!(
        "  fitted in {:.1?}: best length {}, {} nodes",
        t0.elapsed(),
        model.best_length(),
        model.best().graph.node_count()
    );

    // 2. Register it and start the server on an ephemeral port.
    let store = Arc::new(ModelStore::new(256 * 1024 * 1024));
    store.insert("cbf", Arc::new(model));
    let server = Server::start(ServerConfig::default(), store).expect("start server");
    let addr = server.addr();
    println!("serving on http://{addr}\n");

    // 3. Walk the API.
    let (status, body) = request(addr, "GET", "/health", "");
    println!("GET /health            -> {status} {body}");
    let (status, body) = request(addr, "GET", "/models", "");
    println!("GET /models            -> {status} {body}");

    let series: Vec<String> = dataset.series()[0]
        .values()
        .iter()
        .map(f64::to_string)
        .collect();
    let series_body = format!("[{}]", series.join(","));

    let (status, body) = request(addr, "POST", "/models/cbf/predict", &series_body);
    println!("POST /models/cbf/predict -> {status} {body}");
    let (status, body) = request(addr, "POST", "/models/cbf/score?context=5", &series_body);
    println!(
        "POST /models/cbf/score   -> {status} ({} bytes of scores)",
        body.len()
    );
    let (status, body) = request(
        addr,
        "GET",
        "/models/cbf/graphoid?cluster=0&kind=gamma&threshold=0.5",
        "",
    );
    println!(
        "GET /models/cbf/graphoid -> {status} ({} bytes)",
        body.len()
    );
    let (status, body) = request(addr, "GET", "/models/cbf/render?format=svg", "");
    println!(
        "GET /models/cbf/render   -> {status} ({} bytes of SVG)",
        body.len()
    );

    // 4. Batch: several series in one request, fanned over the pool.
    let batch_body = format!("[{series_body},{series_body},{series_body}]");
    let (status, body) = request(addr, "POST", "/models/cbf/batch?op=predict", &batch_body);
    println!("POST /models/cbf/batch   -> {status} {body}");

    // 5. Errors are structured: short series are a 422, unknown models 404.
    let (status, body) = request(addr, "POST", "/models/cbf/score", "[1,2,3]");
    println!("short series             -> {status} {body}");
    let (status, body) = request(addr, "POST", "/models/nope/score", &series_body);
    println!("unknown model            -> {status} {body}");

    // 6. Drain and exit.
    server.shutdown();
    println!("\nserver drained and stopped.");
}
