//! The Clustering-comparison frame as a library call: run k-Graph,
//! k-Means and k-Shape on a trace-like sensor dataset, print the ARI
//! ranking and write the frame's panels as SVG + HTML.
//!
//! ```sh
//! cargo run --release --example compare_methods
//! ```

use graphint_repro::prelude::*;

fn main() {
    let dataset = graphint_repro::datasets::shapes::trace_like(15, 150, 7);
    let k = dataset.n_classes();
    println!("comparing methods on {} (k = {k})", dataset.name());

    let model = KGraph::with_k(k, 7).fit(&dataset);
    let kmeans = ClusteringMethod::new(MethodKind::KMeansZnorm, k, 7).run(&dataset);
    let kshape = ClusteringMethod::new(MethodKind::KShape, k, 7).run(&dataset);

    let frame = ComparisonFrame::build(
        &dataset,
        &[
            MethodPartition {
                name: "k-Graph".into(),
                labels: model.labels.clone(),
            },
            MethodPartition {
                name: "k-Means".into(),
                labels: kmeans,
            },
            MethodPartition {
                name: "k-Shape".into(),
                labels: kshape,
            },
        ],
    );
    println!("{}", frame.summary());

    let mut report = Report::new("Clustering comparison — TraceLike");
    report.section("Partitions (series coloured by true label)");
    report.add_pre(&frame.summary());
    for (_, svg) in &frame.panels {
        report.add_svg(svg);
    }
    let path = std::path::Path::new("out/examples/compare_methods.html");
    report.write(path).expect("write report");
    println!("wrote {}", path.display());
}
