//! Quickstart: cluster a synthetic dataset with k-Graph and inspect the
//! result in five minutes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use graphint_repro::prelude::*;

fn main() {
    // 1. A dataset: Cylinder-Bell-Funnel, 3 classes, 60 series.
    let dataset = graphint_repro::datasets::cbf::cbf(20, 128, 42);
    println!(
        "dataset: {} — {} series of length {}, {} classes",
        dataset.name(),
        dataset.len(),
        dataset.min_len(),
        dataset.n_classes()
    );

    // 2. Fit k-Graph (k = number of classes; the seed fixes every
    //    stochastic component).
    let model = KGraph::with_k(3, 42).fit(&dataset);

    // 3. Quality versus ground truth.
    let ari = adjusted_rand_index(dataset.labels().unwrap(), &model.labels);
    println!("k-Graph ARI: {ari:.3}");

    // 4. What made the clustering tick: the selected length and its scores.
    println!(
        "selected subsequence length ℓ̄ = {} (consistency Wc = {:.2}, interpretability We = {:.2})",
        model.best_length(),
        model.scores[model.best_layer].wc,
        model.scores[model.best_layer].we,
    );

    // 5. Interpretability: the exclusive subgraph (γ-graphoid) per cluster.
    for c in 0..model.k() {
        let g = model.gamma_graphoid(c, 0.8);
        println!(
            "cluster {c}: {} exclusive nodes, {} exclusive edges at γ = 0.8",
            g.nodes.len(),
            g.edges.len()
        );
    }

    // 6. Compare with a raw baseline in two lines.
    let kmeans = ClusteringMethod::new(MethodKind::KMeansZnorm, 3, 42).run(&dataset);
    println!(
        "k-Means ARI for comparison: {:.3}",
        adjusted_rand_index(dataset.labels().unwrap(), &kmeans)
    );
}
