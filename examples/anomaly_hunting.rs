//! Extension demo: Series2Graph-style anomaly hunting on the k-Graph
//! embedding (the lineage the paper's reference [12] points to).
//!
//! Fits k-Graph on clean periodic traffic, then scores a fresh series with
//! injected discords; the rare transitions + empty embedding regions light
//! up exactly where the discords sit.
//!
//! ```sh
//! cargo run --release --example anomaly_hunting
//! ```

use graphint_repro::graphint::ascii::sparkline;
use graphint_repro::kgraph::anomaly::{anomaly_scores, top_anomalies};
use graphint_repro::prelude::*;

fn main() {
    // Clean training data: eight phase-shifted copies of a periodic signal.
    let series: Vec<TimeSeries> = (0..8)
        .map(|p| {
            TimeSeries::new(
                (0..300)
                    .map(|i| ((i + p * 3) as f64 * 0.25).sin() + 0.3 * ((i + p) as f64 * 0.8).sin())
                    .collect(),
            )
        })
        .collect();
    let dataset = Dataset::new("periodic", DatasetKind::Sensor, series);
    let cfg = KGraphConfig {
        n_lengths: 1,
        psi: 20,
        ..KGraphConfig::new(1)
    }
    .with_lengths(vec![25]);
    let model = KGraph::new(cfg).fit(&dataset);
    println!(
        "fitted on clean data: graph has {} nodes, {} edges (ℓ = {})",
        model.best().graph.node_count(),
        model.best().graph.edge_count(),
        model.best_length()
    );

    // A fresh series with two injected discords.
    let mut values: Vec<f64> = (0..300)
        .map(|i| (i as f64 * 0.25).sin() + 0.3 * (i as f64 * 0.8).sin())
        .collect();
    for v in values.iter_mut().skip(90).take(20) {
        *v = 2.0; // frozen sensor
    }
    for (j, v) in values.iter_mut().skip(210).take(20).enumerate() {
        *v += if j % 2 == 0 { 1.5 } else { -1.5 }; // high-frequency burst
    }

    let scores = anomaly_scores(model.best(), &values, 7).expect("series long enough");
    println!("\nseries : {}", sparkline(&values));
    println!("scores : {}", sparkline(&scores));

    let picks = top_anomalies(&scores, 2, 30);
    println!("\ntop-2 anomaly windows (exclusion zone 30):");
    for (rank, &pos) in picks.iter().enumerate() {
        println!(
            "  #{} at window {pos} (covers points {pos}..{}), score {:.2}",
            rank + 1,
            pos + model.best_length(),
            scores[pos]
        );
    }
    println!("\ninjected discords were at 90..110 and 210..230.");
}
